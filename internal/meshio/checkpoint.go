package meshio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"eul3d/internal/euler"
)

const ckptMagic = "EUL3DK01"

// Checkpoint is a restartable snapshot of a steady-state solve: the
// fine-grid solution plus everything needed to make a resumed run
// indistinguishable from an uninterrupted one — the cycle count, the full
// residual history, and the CFL in force (which the divergence watchdog
// may have lowered below its initial value).
type Checkpoint struct {
	Cycle    int
	Mach     float64
	AlphaDeg float64
	CFL      float64
	History  []float64
	Sol      []euler.State
}

// WriteCheckpoint serializes a checkpoint with a CRC32 (IEEE) trailer over
// every preceding byte, so torn or bit-rotted files are rejected on load.
func WriteCheckpoint(w io.Writer, ck *Checkpoint) error {
	if len(ck.History) != ck.Cycle {
		return fmt.Errorf("meshio: checkpoint at cycle %d has %d history entries", ck.Cycle, len(ck.History))
	}
	h := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, h))
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	hdr := []float64{float64(ck.Cycle), ck.Mach, ck.AlphaDeg, ck.CFL}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(ck.History))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, ck.History); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(ck.Sol))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, ck.Sol); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, h.Sum32())
}

// ReadCheckpoint deserializes and validates a checkpoint, verifying the
// CRC32 trailer before trusting any field.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("meshio: reading checkpoint: %w", err)
	}
	if len(raw) < len(ckptMagic)+4 {
		return nil, fmt.Errorf("meshio: truncated checkpoint (%d bytes)", len(raw))
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("meshio: checkpoint CRC mismatch: computed %08x, trailer %08x", got, want)
	}
	br := bytes.NewReader(body)
	if err := expectMagic(br, ckptMagic); err != nil {
		return nil, err
	}
	var hdr [4]float64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("meshio: checkpoint header: %w", err)
	}
	ck := &Checkpoint{Cycle: int(hdr[0]), Mach: hdr[1], AlphaDeg: hdr[2], CFL: hdr[3]}
	if ck.Cycle < 0 || float64(ck.Cycle) != hdr[0] {
		return nil, fmt.Errorf("meshio: implausible checkpoint cycle %g", hdr[0])
	}
	var nh int64
	if err := binary.Read(br, binary.LittleEndian, &nh); err != nil {
		return nil, fmt.Errorf("meshio: checkpoint history count: %w", err)
	}
	if nh != int64(ck.Cycle) {
		return nil, fmt.Errorf("meshio: checkpoint at cycle %d carries %d history entries", ck.Cycle, nh)
	}
	ck.History = make([]float64, nh)
	if err := binary.Read(br, binary.LittleEndian, &ck.History); err != nil {
		return nil, fmt.Errorf("meshio: checkpoint history: %w", err)
	}
	for i, v := range ck.History {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("meshio: checkpoint history entry %d is %g", i, v)
		}
	}
	var ns int64
	if err := binary.Read(br, binary.LittleEndian, &ns); err != nil {
		return nil, fmt.Errorf("meshio: checkpoint solution count: %w", err)
	}
	if ns < 0 || ns > 1<<31 {
		return nil, fmt.Errorf("meshio: implausible checkpoint solution size %d", ns)
	}
	ck.Sol = make([]euler.State, ns)
	if err := binary.Read(br, binary.LittleEndian, &ck.Sol); err != nil {
		return nil, fmt.Errorf("meshio: checkpoint solution: %w", err)
	}
	for i := range ck.Sol {
		for k := 0; k < euler.NVar; k++ {
			if math.IsNaN(ck.Sol[i][k]) || math.IsInf(ck.Sol[i][k], 0) {
				return nil, fmt.Errorf("meshio: checkpoint solution vertex %d var %d is %g", i, k, ck.Sol[i][k])
			}
		}
		if ck.Sol[i][0] <= 0 {
			return nil, fmt.Errorf("meshio: checkpoint solution has unphysical density at vertex %d", i)
		}
	}
	return ck, nil
}

// SaveCheckpoint writes a checkpoint atomically: the bytes land in
// <path>.tmp, are fsynced, and only then renamed over path — a crash
// mid-write can never destroy the previous good checkpoint.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteCheckpoint(f, ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads and validates a checkpoint from path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
