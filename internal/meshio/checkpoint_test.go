package meshio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
)

func sampleCheckpoint() *Checkpoint {
	g := euler.Air
	return &Checkpoint{
		Cycle:    3,
		Mach:     0.7,
		AlphaDeg: 1.5,
		CFL:      2.25,
		History:  []float64{1.0, 0.4, 0.17},
		Sol: []euler.State{
			g.Freestream(0.7, 1.5),
			g.FromPrimitive(1.2, 0.3, -0.1, 0.05, 0.8),
			g.FromPrimitive(0.9, -0.2, 0.1, 0.0, 1.1),
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck := sampleCheckpoint()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != ck.Cycle || got.Mach != ck.Mach || got.AlphaDeg != ck.AlphaDeg || got.CFL != ck.CFL {
		t.Fatalf("scalars differ: %+v vs %+v", got, ck)
	}
	for i := range ck.History {
		if got.History[i] != ck.History[i] {
			t.Fatalf("history[%d] = %v, want %v", i, got.History[i], ck.History[i])
		}
	}
	for i := range ck.Sol {
		if got.Sol[i] != ck.Sol[i] {
			t.Fatalf("sol[%d] = %v, want %v", i, got.Sol[i], ck.Sol[i])
		}
	}
}

func TestCheckpointWriteRejectsInconsistentHistory(t *testing.T) {
	ck := sampleCheckpoint()
	ck.History = ck.History[:1] // 1 entry for cycle 3
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err == nil {
		t.Fatal("accepted checkpoint with history/cycle mismatch")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	ck := sampleCheckpoint()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Any single flipped bit anywhere in the file must be caught by the
	// CRC trailer (or, for trailer flips, by the mismatch itself).
	for off := 0; off < len(good); off += 7 {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x10
		if _, err := ReadCheckpoint(bytes.NewReader(bad)); err == nil {
			t.Errorf("bit flip at offset %d accepted", off)
		}
	}
	// Truncation at every length must error, never panic.
	for n := 0; n < len(good); n++ {
		if _, err := ReadCheckpoint(bytes.NewReader(good[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestSaveCheckpointIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	ck := sampleCheckpoint()
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after successful save")
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != ck.Cycle {
		t.Errorf("loaded cycle %d, want %d", got.Cycle, ck.Cycle)
	}

	// A failed save must not disturb the existing good checkpoint.
	bad := sampleCheckpoint()
	bad.History = bad.History[:1]
	if err := SaveCheckpoint(path, bad); err == nil {
		t.Fatal("inconsistent checkpoint saved successfully")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after failed save")
	}
	if again, err := LoadCheckpoint(path); err != nil || again.Cycle != ck.Cycle {
		t.Errorf("previous checkpoint damaged by failed save: %v", err)
	}
}

// TestLoaderFuzzRegression drives every binary loader over systematically
// damaged inputs: truncation at every prefix length and a sweep of byte
// flips. Loaders must return a descriptive error — never panic, never
// return garbage as success.
func TestLoaderFuzzRegression(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(4, 3, 2, 9))
	if err != nil {
		t.Fatal(err)
	}
	var meshBuf, solBuf, partBuf bytes.Buffer
	if err := WriteMesh(&meshBuf, m); err != nil {
		t.Fatal(err)
	}
	g := euler.Air
	sol := make([]euler.State, m.NV())
	for i := range sol {
		sol[i] = g.Freestream(0.7, 1)
	}
	if err := WriteSolution(&solBuf, 0.7, 1, sol); err != nil {
		t.Fatal(err)
	}
	part := make([]int32, m.NV())
	for i := range part {
		part[i] = int32(i % 3)
	}
	if err := WritePartition(&partBuf, 3, part); err != nil {
		t.Fatal(err)
	}

	loaders := []struct {
		name string
		data []byte
		load func([]byte) error
	}{
		{"mesh", meshBuf.Bytes(), func(b []byte) error {
			_, err := ReadMesh(bytes.NewReader(b))
			return err
		}},
		{"solution", solBuf.Bytes(), func(b []byte) error {
			_, _, _, err := ReadSolution(bytes.NewReader(b))
			return err
		}},
		{"partition", partBuf.Bytes(), func(b []byte) error {
			_, _, err := ReadPartition(bytes.NewReader(b))
			return err
		}},
	}

	for _, ld := range loaders {
		t.Run(ld.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("loader panicked: %v", r)
				}
			}()
			if err := ld.load(ld.data); err != nil {
				t.Fatalf("pristine file rejected: %v", err)
			}
			// Truncation at every length short of the full file.
			for n := 0; n < len(ld.data); n++ {
				if err := ld.load(ld.data[:n]); err == nil {
					t.Fatalf("truncation to %d of %d bytes accepted", n, len(ld.data))
				}
			}
			// Byte corruption sweep. Unlike the CRC-trailered checkpoint,
			// these formats carry no integrity check, so a payload flip can
			// go unnoticed — but flips in magic, counts, indices, or kinds
			// must produce errors (with context), never a panic.
			for off := 0; off < len(ld.data); off += 3 {
				bad := append([]byte(nil), ld.data...)
				bad[off] ^= 0xFF
				err := ld.load(bad)
				if err != nil && !strings.Contains(err.Error(), "meshio:") {
					t.Fatalf("flip at %d: error lacks meshio context: %v", off, err)
				}
			}
		})
	}
}
