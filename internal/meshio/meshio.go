// Package meshio reads and writes the on-disk artifacts of the solver
// pipeline, mirroring the paper's file-based workflow (grids are generated
// and partitioned in a sequential preprocessing phase, written out, and
// read back by the solver; the reported C90 runs even include "the time to
// read all grid files, write out the solution"). The formats are compact
// little-endian binaries with a magic header and explicit counts.
package meshio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"eul3d/internal/euler"
	"eul3d/internal/geom"
	"eul3d/internal/mesh"
)

const (
	meshMagic = "EUL3DM01"
	solMagic  = "EUL3DS01"
	partMagic = "EUL3DP01"
)

// WriteMesh serializes a finished mesh (vertices, tets, boundary faces
// with kinds). Edge structures are rebuilt by Finish on load.
func WriteMesh(w io.Writer, m *mesh.Mesh) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(meshMagic); err != nil {
		return err
	}
	hdr := []int64{int64(m.NV()), int64(m.NT()), int64(len(m.BFaces))}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for _, x := range m.X {
		if err := binary.Write(bw, binary.LittleEndian, [3]float64{x.X, x.Y, x.Z}); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Tets); err != nil {
		return err
	}
	for _, f := range m.BFaces {
		if err := binary.Write(bw, binary.LittleEndian, f.V); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(f.Kind)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMesh deserializes a mesh and finishes it (rebuilding the edge-based
// structures).
func ReadMesh(r io.Reader) (*mesh.Mesh, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, meshMagic); err != nil {
		return nil, err
	}
	var hdr [3]int64
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("meshio: mesh header: %w", err)
	}
	nv, nt, nbf := hdr[0], hdr[1], hdr[2]
	if nv < 0 || nt < 0 || nbf < 0 || nv > 1<<31 || nt > 1<<31 || nbf > 1<<31 {
		return nil, fmt.Errorf("meshio: implausible header %v", hdr)
	}
	m := &mesh.Mesh{
		X:    make([]geom.Vec3, nv),
		Tets: make([][4]int32, nt),
	}
	for i := range m.X {
		var x [3]float64
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return nil, fmt.Errorf("meshio: mesh vertex %d of %d: %w", i, nv, err)
		}
		if math.IsNaN(x[0]) || math.IsNaN(x[1]) || math.IsNaN(x[2]) {
			return nil, fmt.Errorf("meshio: mesh vertex %d has NaN coordinates", i)
		}
		m.X[i] = geom.Vec3{X: x[0], Y: x[1], Z: x[2]}
	}
	if err := binary.Read(br, binary.LittleEndian, &m.Tets); err != nil {
		return nil, fmt.Errorf("meshio: tetrahedra block (%d tets after %d vertices): %w", nt, nv, err)
	}
	for ti, tet := range m.Tets {
		for k, v := range tet {
			if v < 0 || int64(v) >= nv {
				return nil, fmt.Errorf("meshio: tet %d corner %d references vertex %d outside [0,%d)", ti, k, v, nv)
			}
		}
	}
	m.BFaces = make([]mesh.BFace, nbf)
	for i := range m.BFaces {
		if err := binary.Read(br, binary.LittleEndian, &m.BFaces[i].V); err != nil {
			return nil, fmt.Errorf("meshio: boundary face %d of %d: %w", i, nbf, err)
		}
		for k, v := range m.BFaces[i].V {
			if v < 0 || int64(v) >= nv {
				return nil, fmt.Errorf("meshio: boundary face %d corner %d references vertex %d outside [0,%d)", i, k, v, nv)
			}
		}
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("meshio: boundary face %d kind byte: %w", i, err)
		}
		if kind > byte(mesh.Symmetry) {
			return nil, fmt.Errorf("meshio: boundary face %d: unknown boundary kind %d", i, kind)
		}
		m.BFaces[i].Kind = mesh.BCKind(kind)
	}
	if err := m.Finish(); err != nil {
		return nil, fmt.Errorf("meshio: finishing loaded mesh: %w", err)
	}
	return m, nil
}

// WriteSolution serializes a flow solution with its reference condition.
func WriteSolution(w io.Writer, mach, alphaDeg float64, sol []euler.State) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(solMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, []float64{mach, alphaDeg}); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(sol))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, sol); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSolution deserializes a flow solution.
func ReadSolution(r io.Reader) (mach, alphaDeg float64, sol []euler.State, err error) {
	br := bufio.NewReader(r)
	if err = expectMagic(br, solMagic); err != nil {
		return
	}
	var ref [2]float64
	if err = binary.Read(br, binary.LittleEndian, &ref); err != nil {
		err = fmt.Errorf("meshio: solution reference condition: %w", err)
		return
	}
	mach, alphaDeg = ref[0], ref[1]
	var n int64
	if err = binary.Read(br, binary.LittleEndian, &n); err != nil {
		err = fmt.Errorf("meshio: solution vertex count: %w", err)
		return
	}
	if n < 0 || n > 1<<31 {
		err = fmt.Errorf("meshio: implausible solution size %d", n)
		return
	}
	sol = make([]euler.State, n)
	if err = binary.Read(br, binary.LittleEndian, &sol); err != nil {
		err = fmt.Errorf("meshio: solution states (%d vertices): %w", n, err)
		return
	}
	for i := range sol {
		if sol[i][0] <= 0 || math.IsNaN(sol[i][0]) {
			err = fmt.Errorf("meshio: unphysical density at vertex %d", i)
			return
		}
		for k := 0; k < euler.NVar; k++ {
			if math.IsNaN(sol[i][k]) || math.IsInf(sol[i][k], 0) {
				err = fmt.Errorf("meshio: solution vertex %d var %d is %g", i, k, sol[i][k])
				return
			}
		}
	}
	return
}

// WritePartition serializes a processor assignment.
func WritePartition(w io.Writer, nproc int, part []int32) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(partMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, []int64{int64(nproc), int64(len(part))}); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, part); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadPartition deserializes a processor assignment, validating the range.
func ReadPartition(r io.Reader) (nproc int, part []int32, err error) {
	br := bufio.NewReader(r)
	if err = expectMagic(br, partMagic); err != nil {
		return
	}
	var hdr [2]int64
	if err = binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		err = fmt.Errorf("meshio: partition header: %w", err)
		return
	}
	if hdr[0] < 1 || hdr[1] < 0 || hdr[1] > 1<<31 {
		err = fmt.Errorf("meshio: implausible partition header %v", hdr)
		return
	}
	nproc = int(hdr[0])
	part = make([]int32, hdr[1])
	if err = binary.Read(br, binary.LittleEndian, &part); err != nil {
		err = fmt.Errorf("meshio: partition assignments (%d vertices): %w", hdr[1], err)
		return
	}
	for g, p := range part {
		if p < 0 || int(p) >= nproc {
			err = fmt.Errorf("meshio: vertex %d assigned to invalid processor %d of %d", g, p, nproc)
			return
		}
	}
	return
}

// SaveMesh / LoadMesh / SaveSolution / LoadSolution / SavePartition /
// LoadPartition are the file-path conveniences used by the commands.

// SaveMesh writes m to path.
func SaveMesh(path string, m *mesh.Mesh) error {
	return withCreate(path, func(f *os.File) error { return WriteMesh(f, m) })
}

// LoadMesh reads a mesh from path.
func LoadMesh(path string) (*mesh.Mesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMesh(f)
}

// SaveSolution writes a solution to path.
func SaveSolution(path string, mach, alphaDeg float64, sol []euler.State) error {
	return withCreate(path, func(f *os.File) error { return WriteSolution(f, mach, alphaDeg, sol) })
}

// LoadSolution reads a solution from path.
func LoadSolution(path string) (mach, alphaDeg float64, sol []euler.State, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	return ReadSolution(f)
}

// SavePartition writes a partition to path.
func SavePartition(path string, nproc int, part []int32) error {
	return withCreate(path, func(f *os.File) error { return WritePartition(f, nproc, part) })
}

// LoadPartition reads a partition from path.
func LoadPartition(path string) (int, []int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	return ReadPartition(f)
}

func withCreate(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func expectMagic(r io.Reader, magic string) error {
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("meshio: reading magic: %w", err)
	}
	if string(buf) != magic {
		return fmt.Errorf("meshio: bad magic %q, want %q", buf, magic)
	}
	return nil
}

// --- byte-level helpers ----------------------------------------------------
//
// The content-addressed artifact store (internal/store) traffics in raw
// payload bytes: a mesh artifact is the WriteMesh wire format, a solve
// result the WriteSolution format, a checkpoint the WriteCheckpoint
// format. These helpers bridge between those formats and []byte without
// touching the filesystem.

// EncodeMesh serializes a mesh to its wire-format bytes.
func EncodeMesh(m *mesh.Mesh) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteMesh(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeMesh deserializes wire-format mesh bytes (finishing the mesh).
func DecodeMesh(b []byte) (*mesh.Mesh, error) {
	return ReadMesh(bytes.NewReader(b))
}

// EncodeSolution serializes a solution to its wire-format bytes.
func EncodeSolution(mach, alphaDeg float64, sol []euler.State) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteSolution(&buf, mach, alphaDeg, sol); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeCheckpoint serializes a checkpoint to its wire-format bytes.
func EncodeCheckpoint(ck *Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ck); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint deserializes (and CRC-validates) checkpoint bytes.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	return ReadCheckpoint(bytes.NewReader(b))
}
