package meshio

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
)

// WriteVTK writes the mesh — and, when sol is non-nil, the flow solution
// (density, pressure, Mach number, velocity) — as a legacy-format VTK
// unstructured grid, viewable in ParaView and similar tools. This is the
// modern stand-in for the plotting pipeline behind the paper's Figures 3
// and 4. An optional vertex scalar field (e.g. a partition id) can be
// attached via extra.
func WriteVTK(w io.Writer, m *mesh.Mesh, g euler.Gas, sol []euler.State, extraName string, extra []float64) error {
	if sol != nil && len(sol) != m.NV() {
		return fmt.Errorf("meshio: solution has %d states for %d vertices", len(sol), m.NV())
	}
	if extra != nil && len(extra) != m.NV() {
		return fmt.Errorf("meshio: extra field has %d values for %d vertices", len(extra), m.NV())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vtk DataFile Version 3.0\nEUL3D unstructured grid\nASCII\nDATASET UNSTRUCTURED_GRID\n")
	fmt.Fprintf(bw, "POINTS %d double\n", m.NV())
	for _, x := range m.X {
		fmt.Fprintf(bw, "%g %g %g\n", x.X, x.Y, x.Z)
	}
	fmt.Fprintf(bw, "CELLS %d %d\n", m.NT(), 5*m.NT())
	for _, t := range m.Tets {
		fmt.Fprintf(bw, "4 %d %d %d %d\n", t[0], t[1], t[2], t[3])
	}
	fmt.Fprintf(bw, "CELL_TYPES %d\n", m.NT())
	for i := 0; i < m.NT(); i++ {
		fmt.Fprintln(bw, 10) // VTK_TETRA
	}

	if sol != nil || extra != nil {
		fmt.Fprintf(bw, "POINT_DATA %d\n", m.NV())
	}
	if sol != nil {
		fmt.Fprintf(bw, "SCALARS density double 1\nLOOKUP_TABLE default\n")
		for _, s := range sol {
			fmt.Fprintf(bw, "%g\n", s[0])
		}
		fmt.Fprintf(bw, "SCALARS pressure double 1\nLOOKUP_TABLE default\n")
		for _, s := range sol {
			fmt.Fprintf(bw, "%g\n", g.Pressure(s))
		}
		fmt.Fprintf(bw, "SCALARS mach double 1\nLOOKUP_TABLE default\n")
		for _, s := range sol {
			fmt.Fprintf(bw, "%g\n", g.Mach(s))
		}
		fmt.Fprintf(bw, "VECTORS velocity double\n")
		for _, s := range sol {
			u, v, wz := g.Velocity(s)
			fmt.Fprintf(bw, "%g %g %g\n", u, v, wz)
		}
	}
	if extra != nil {
		name := extraName
		if name == "" {
			name = "extra"
		}
		fmt.Fprintf(bw, "SCALARS %s double 1\nLOOKUP_TABLE default\n", name)
		for _, v := range extra {
			fmt.Fprintf(bw, "%g\n", v)
		}
	}
	return bw.Flush()
}

// SaveVTK writes a VTK file to path.
func SaveVTK(path string, m *mesh.Mesh, g euler.Gas, sol []euler.State, extraName string, extra []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteVTK(f, m, g, sol, extraName, extra); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
