// Package meshgen generates the synthetic unstructured tetrahedral meshes
// used throughout this reproduction. The paper's aircraft meshes came from a
// proprietary sequential advancing-front generator; here a channel domain
// with a smooth wall bump (the classical transonic test geometry) is
// tetrahedralized by a Kuhn subdivision of a structured hexahedral grid,
// optionally jittered in the interior so that successive multigrid levels
// are genuinely non-nested, exactly as EUL3D's "completely unrelated coarse
// and fine grids" require.
package meshgen

import (
	"fmt"
	"math"
	"math/rand"

	"eul3d/internal/geom"
	"eul3d/internal/mesh"
)

// ChannelSpec describes a channel mesh with an optional circular-arc-like
// bump on the bottom wall (y = 0).
type ChannelSpec struct {
	NX, NY, NZ int     // cells per direction (vertices are N+1)
	LX, LY, LZ float64 // domain extents

	BumpHeight float64 // bump height as a fraction of LY (0 disables)
	BumpStart  float64 // bump x-extent start
	BumpEnd    float64 // bump x-extent end

	// RampAngleDeg replaces the sinusoidal bump with a compression ramp:
	// the bottom wall rises at this angle from BumpStart to BumpEnd and
	// stays at the reached height downstream (set BumpEnd = LX for a pure
	// wedge). BumpHeight is ignored when nonzero.
	RampAngleDeg float64

	// WallEnds turns the x = 0 and x = LX faces into inviscid walls instead
	// of far-field. Shock-tube scenarios need this: their initial data does
	// not match any single freestream state, so far-field ends would inject
	// spurious waves, while closed ends are exact as long as no wave reaches
	// them.
	WallEnds bool

	Jitter float64 // interior node jitter as a fraction of local spacing
	Seed   int64   // jitter RNG seed (levels should differ)
}

// DefaultChannel returns the transonic bump-channel specification used by
// the repository's experiments at the given resolution.
func DefaultChannel(nx, ny, nz int, seed int64) ChannelSpec {
	return ChannelSpec{
		NX: nx, NY: ny, NZ: nz,
		LX: 3, LY: 1, LZ: 1,
		BumpHeight: 0.06,
		BumpStart:  1.0,
		BumpEnd:    2.0,
		Jitter:     0.12,
		Seed:       seed,
	}
}

// kuhnTets lists the Kuhn subdivision of a hexahedron into six tetrahedra
// sharing the main diagonal (corner 0 to corner 7). Corner numbering:
// bit 0 = +x, bit 1 = +y, bit 2 = +z. Every tet below is positively
// oriented for an axis-aligned cell.
var kuhnTets = [6][4]int{
	{0, 1, 3, 7},
	{0, 3, 2, 7},
	{0, 2, 6, 7},
	{0, 6, 4, 7},
	{0, 4, 5, 7},
	{0, 5, 1, 7},
}

// bump returns the bottom-wall elevation at streamwise position x.
func (s ChannelSpec) bump(x float64) float64 {
	if s.RampAngleDeg != 0 {
		slope := math.Tan(s.RampAngleDeg * math.Pi / 180)
		switch {
		case x <= s.BumpStart:
			return 0
		case x >= s.BumpEnd:
			return slope * (s.BumpEnd - s.BumpStart)
		default:
			return slope * (x - s.BumpStart)
		}
	}
	if s.BumpHeight == 0 || x <= s.BumpStart || x >= s.BumpEnd {
		return 0
	}
	t := (x - s.BumpStart) / (s.BumpEnd - s.BumpStart)
	sin := math.Sin(math.Pi * t)
	return s.BumpHeight * s.LY * sin * sin
}

// Channel generates a finished channel mesh from spec. Boundary conditions:
// x=0 and x=LX faces are far-field (inflow/outflow), y faces are walls
// (the bottom one carries the bump), z faces are symmetry planes.
func Channel(spec ChannelSpec) (*mesh.Mesh, error) {
	if spec.NX < 1 || spec.NY < 1 || spec.NZ < 1 {
		return nil, fmt.Errorf("meshgen: cell counts must be >= 1, got %d x %d x %d", spec.NX, spec.NY, spec.NZ)
	}
	nx, ny, nz := spec.NX, spec.NY, spec.NZ
	nvx, nvy, nvz := nx+1, ny+1, nz+1
	nv := nvx * nvy * nvz

	vid := func(i, j, k int) int32 { return int32(i + nvx*(j+nvy*k)) }

	m := &mesh.Mesh{X: make([]geom.Vec3, nv)}
	hx := spec.LX / float64(nx)
	hy := spec.LY / float64(ny)
	hz := spec.LZ / float64(nz)

	rng := rand.New(rand.NewSource(spec.Seed))
	jit := spec.Jitter
	for try := 0; ; try++ {
		rng.Seed(spec.Seed + int64(try))
		for k := 0; k < nvz; k++ {
			for j := 0; j < nvy; j++ {
				for i := 0; i < nvx; i++ {
					x := float64(i) * hx
					y := float64(j) * hy
					z := float64(k) * hz
					if jit > 0 && i > 0 && i < nx && j > 0 && j < ny && k > 0 && k < nz {
						x += jit * hx * (2*rng.Float64() - 1)
						y += jit * hy * (2*rng.Float64() - 1)
						z += jit * hz * (2*rng.Float64() - 1)
					}
					// Shear the column upward over the bump, decaying to
					// zero at the top wall so the channel height is kept.
					b := spec.bump(x)
					y += b * (1 - y/spec.LY)
					m.X[vid(i, j, k)] = geom.Vec3{X: x, Y: y, Z: z}
				}
			}
		}
		if positiveCells(m.X, spec, vid) {
			break
		}
		// Jitter or bump shear inverted a tet; retry with smaller jitter.
		jit /= 2
		if try > 20 {
			return nil, fmt.Errorf("meshgen: could not generate positively-oriented mesh (bump too steep?)")
		}
	}

	m.Tets = make([][4]int32, 0, 6*nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				var c [8]int32
				for b := 0; b < 8; b++ {
					c[b] = vid(i+b&1, j+(b>>1)&1, k+(b>>2)&1)
				}
				for _, t := range kuhnTets {
					m.Tets = append(m.Tets, [4]int32{c[t[0]], c[t[1]], c[t[2]], c[t[3]]})
				}
			}
		}
	}

	addBoundaryFaces(m, spec, vid)
	if err := m.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// positiveCells checks every Kuhn tet of every cell for positive volume.
func positiveCells(x []geom.Vec3, spec ChannelSpec, vid func(i, j, k int) int32) bool {
	for k := 0; k < spec.NZ; k++ {
		for j := 0; j < spec.NY; j++ {
			for i := 0; i < spec.NX; i++ {
				var c [8]int32
				for b := 0; b < 8; b++ {
					c[b] = vid(i+b&1, j+(b>>1)&1, k+(b>>2)&1)
				}
				for _, t := range kuhnTets {
					if geom.TetVolume(x[c[t[0]]], x[c[t[1]]], x[c[t[2]]], x[c[t[3]]]) <= 0 {
						return false
					}
				}
			}
		}
	}
	return true
}

// outwardFaces lists, for a positively oriented tet (a,b,c,d), its four
// faces ordered so that each triangle's normal points out of the tet.
var outwardFaces = [4][3]int{
	{1, 2, 3}, // opposite vertex 0
	{0, 3, 2}, // opposite vertex 1
	{0, 1, 3}, // opposite vertex 2
	{0, 2, 1}, // opposite vertex 3
}

// addBoundaryFaces walks the cells adjacent to each domain boundary plane
// and collects tet faces lying entirely in that plane (in index space),
// already outward-oriented. This is O(surface) and needs no global face
// hashing, which matters at paper scale (4.5M tets).
func addBoundaryFaces(m *mesh.Mesh, spec ChannelSpec, vid func(i, j, k int) int32) {
	nx, ny, nz := spec.NX, spec.NY, spec.NZ
	nvx, nvy := nx+1, ny+1

	// decode returns structured coordinates of vertex v.
	decode := func(v int32) (i, j, k int) {
		i = int(v) % nvx
		j = (int(v) / nvx) % nvy
		k = int(v) / (nvx * nvy)
		return
	}
	onPlane := func(v int32, axis, val int) bool {
		i, j, k := decode(v)
		switch axis {
		case 0:
			return i == val
		case 1:
			return j == val
		default:
			return k == val
		}
	}

	type plane struct {
		axis, val int
		kind      mesh.BCKind
	}
	endKind := mesh.FarField
	if spec.WallEnds {
		endKind = mesh.Wall
	}
	planes := []plane{
		{0, 0, endKind},    // inflow (or closed shock-tube end)
		{0, nx, endKind},   // outflow (or closed shock-tube end)
		{1, 0, mesh.Wall},  // bottom wall (bump)
		{1, ny, mesh.Wall}, // top wall
		{2, 0, mesh.Symmetry},
		{2, nz, mesh.Symmetry},
	}

	emitCell := func(i, j, k int, p plane) {
		var c [8]int32
		for b := 0; b < 8; b++ {
			c[b] = vid(i+b&1, j+(b>>1)&1, k+(b>>2)&1)
		}
		for _, t := range kuhnTets {
			tet := [4]int32{c[t[0]], c[t[1]], c[t[2]], c[t[3]]}
			for _, f := range outwardFaces {
				v0, v1, v2 := tet[f[0]], tet[f[1]], tet[f[2]]
				if onPlane(v0, p.axis, p.val) && onPlane(v1, p.axis, p.val) && onPlane(v2, p.axis, p.val) {
					m.BFaces = append(m.BFaces, mesh.BFace{V: [3]int32{v0, v1, v2}, Kind: p.kind})
				}
			}
		}
	}

	for _, p := range planes {
		switch p.axis {
		case 0:
			i := 0
			if p.val == nx {
				i = nx - 1
			}
			for k := 0; k < nz; k++ {
				for j := 0; j < ny; j++ {
					emitCell(i, j, k, p)
				}
			}
		case 1:
			j := 0
			if p.val == ny {
				j = ny - 1
			}
			for k := 0; k < nz; k++ {
				for i := 0; i < nx; i++ {
					emitCell(i, j, k, p)
				}
			}
		default:
			k := 0
			if p.val == nz {
				k = nz - 1
			}
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					emitCell(i, j, k, p)
				}
			}
		}
	}
}

// Sequence generates a multigrid sequence of levels meshes over the same
// domain, finest first. Each level halves the cell counts (never below 2)
// and uses a different jitter seed, so consecutive grids are non-nested —
// the regime EUL3D's transfer operators are designed for.
func Sequence(spec ChannelSpec, levels int) ([]*mesh.Mesh, error) {
	if levels < 1 {
		return nil, fmt.Errorf("meshgen: levels must be >= 1, got %d", levels)
	}
	out := make([]*mesh.Mesh, levels)
	s := spec
	for l := 0; l < levels; l++ {
		s.Seed = spec.Seed + int64(1000*l)
		m, err := Channel(s)
		if err != nil {
			return nil, fmt.Errorf("meshgen: level %d: %w", l, err)
		}
		out[l] = m
		s.NX = max2(s.NX/2, 2)
		s.NY = max2(s.NY/2, 2)
		s.NZ = max2(s.NZ/2, 2)
	}
	return out, nil
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
