package meshgen

import (
	"math"
	"testing"

	"eul3d/internal/geom"
	"eul3d/internal/mesh"
)

func TestChannelCounts(t *testing.T) {
	spec := DefaultChannel(4, 3, 2, 1)
	m, err := Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantNV := 5 * 4 * 3
	wantNT := 6 * 4 * 3 * 2
	if m.NV() != wantNV || m.NT() != wantNT {
		t.Errorf("nv=%d (want %d) nt=%d (want %d)", m.NV(), wantNV, m.NT(), wantNT)
	}
	// Each boundary quad splits into 2 triangles.
	wantBF := 2 * (2*3*2 + 2*4*2 + 2*4*3)
	if len(m.BFaces) != wantBF {
		t.Errorf("boundary faces = %d, want %d", len(m.BFaces), wantBF)
	}
}

func TestChannelValid(t *testing.T) {
	for _, jit := range []float64{0, 0.12} {
		spec := DefaultChannel(6, 4, 3, 42)
		spec.Jitter = jit
		m, err := Channel(spec)
		if err != nil {
			t.Fatalf("jitter %v: %v", jit, err)
		}
		if err := m.Validate(1e-10); err != nil {
			t.Errorf("jitter %v: %v", jit, err)
		}
	}
}

func TestChannelNoBumpVolume(t *testing.T) {
	spec := DefaultChannel(5, 4, 3, 3)
	spec.BumpHeight = 0
	spec.Jitter = 0
	m, err := Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	tot := 0.0
	for _, v := range m.Vol {
		tot += v
	}
	want := spec.LX * spec.LY * spec.LZ
	if math.Abs(tot-want) > 1e-12*want {
		t.Errorf("total volume %g, want %g", tot, want)
	}
}

func TestBumpReducesVolume(t *testing.T) {
	spec := DefaultChannel(12, 6, 2, 3)
	spec.Jitter = 0
	m, err := Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	tot := 0.0
	for _, v := range m.Vol {
		tot += v
	}
	box := spec.LX * spec.LY * spec.LZ
	if tot >= box {
		t.Errorf("bump channel volume %g not smaller than box %g", tot, box)
	}
	if tot < 0.9*box {
		t.Errorf("bump removed too much volume: %g of %g", tot, box)
	}
}

func TestBoundaryKinds(t *testing.T) {
	spec := DefaultChannel(4, 3, 2, 5)
	m, err := Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[mesh.BCKind]int{}
	for _, f := range m.BFaces {
		counts[f.Kind]++
	}
	if counts[mesh.FarField] != 2*2*3*2 {
		t.Errorf("farfield faces = %d", counts[mesh.FarField])
	}
	if counts[mesh.Wall] != 2*2*4*2 {
		t.Errorf("wall faces = %d", counts[mesh.Wall])
	}
	if counts[mesh.Symmetry] != 2*2*4*3 {
		t.Errorf("symmetry faces = %d", counts[mesh.Symmetry])
	}
}

func TestBoundaryNormalsOutward(t *testing.T) {
	spec := DefaultChannel(4, 4, 4, 9)
	m, err := Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	center := geom.Vec3{X: spec.LX / 2, Y: spec.LY / 2, Z: spec.LZ / 2}
	for _, f := range m.BFaces {
		c := geom.TriCentroid(m.X[f.V[0]], m.X[f.V[1]], m.X[f.V[2]])
		if f.Normal.Dot(c.Sub(center)) <= 0 {
			t.Fatalf("boundary face %v normal not outward", f.V)
		}
	}
}

func TestSequenceNonNested(t *testing.T) {
	spec := DefaultChannel(8, 4, 4, 11)
	seq, err := Sequence(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 {
		t.Fatalf("levels = %d", len(seq))
	}
	for l := 1; l < len(seq); l++ {
		if seq[l].NV() >= seq[l-1].NV() {
			t.Errorf("level %d not coarser: %d vs %d vertices", l, seq[l].NV(), seq[l-1].NV())
		}
	}
	// Every level is a valid standalone mesh.
	for l, m := range seq {
		if err := m.Validate(1e-10); err != nil {
			t.Errorf("level %d: %v", l, err)
		}
	}
}

func TestSequenceFloorsAtTwoCells(t *testing.T) {
	spec := DefaultChannel(4, 2, 2, 1)
	seq, err := Sequence(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	last := seq[len(seq)-1]
	if last.NV() < 3*3*3 {
		t.Errorf("coarsest level too small: %d vertices", last.NV())
	}
}

func TestBadSpecs(t *testing.T) {
	if _, err := Channel(ChannelSpec{NX: 0, NY: 1, NZ: 1, LX: 1, LY: 1, LZ: 1}); err == nil {
		t.Error("Channel accepted zero cells")
	}
	if _, err := Sequence(DefaultChannel(2, 2, 2, 1), 0); err == nil {
		t.Error("Sequence accepted zero levels")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Channel(DefaultChannel(5, 3, 3, 77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Channel(DefaultChannel(5, 3, 3, 77))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("same seed produced different meshes")
		}
	}
	c, err := Channel(DefaultChannel(5, 3, 3, 78))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.X {
		if a.X[i] != c.X[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical meshes")
	}
}

func TestExtremeJitterRetries(t *testing.T) {
	// Absurd jitter must not produce an inverted mesh: the generator
	// halves the amplitude until every tet is positively oriented.
	spec := DefaultChannel(5, 4, 3, 13)
	spec.Jitter = 0.9
	m, err := Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

func TestSteepBumpRejected(t *testing.T) {
	// A bump taller than the channel shears cells inside out beyond
	// repair; the generator must fail cleanly rather than emit garbage.
	spec := DefaultChannel(6, 4, 3, 1)
	spec.BumpHeight = 40
	spec.Jitter = 0
	if _, err := Channel(spec); err == nil {
		t.Error("accepted an impossible bump")
	}
}
