package parti

import (
	"errors"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/simnet"
)

// faultyFixture builds a 3-processor distribution where processor 1 reads
// ghosts owned by processors 0 and 2, and returns the schedule plus fabric.
func faultyFixture(t *testing.T, plan *simnet.FaultPlan) (*Dist, *GhostSpace, *Schedule, *simnet.Fabric) {
	t.Helper()
	part := []int32{0, 0, 1, 1, 2, 2}
	d, err := NewDist(part, 3)
	if err != nil {
		t.Fatal(err)
	}
	gs := NewGhostSpace(d)
	refs := [][]int32{{0, 1}, {0, 1, 2, 3, 4, 5}, {4, 5}}
	sch := BuildSchedule(gs, refs)
	f := simnet.New(3)
	if plan != nil {
		f.SetFaultPlan(plan)
	}
	return d, gs, sch, f
}

func mkStateData(d *Dist, gs *GhostSpace) [][]euler.State {
	data := make([][]euler.State, d.NProc)
	for p := 0; p < d.NProc; p++ {
		data[p] = make([]euler.State, gs.TotalSize(p))
		for li, g := range d.L2G[p] {
			data[p][li][0] = 100 + float64(g)
		}
	}
	return data
}

func checkGhosts(t *testing.T, d *Dist, gs *GhostSpace, data [][]euler.State) {
	t.Helper()
	for p := 0; p < d.NProc; p++ {
		base := d.Count(p)
		for si, g := range gs.Ghosts(p) {
			if got, want := data[p][base+si][0], 100+float64(g); got != want {
				t.Errorf("proc %d ghost of global %d = %v, want %v", p, g, got, want)
			}
		}
	}
}

func TestGatherHealsDroppedMessage(t *testing.T) {
	plan := simnet.NewFaultPlan(simnet.FaultEvent{Kind: simnet.FaultDrop, Src: 0, Dst: 1, Seq: 0})
	d, gs, sch, f := faultyFixture(t, plan)
	data := mkStateData(d, gs)
	if err := sch.GatherStates(f, data); err != nil {
		t.Fatalf("gather did not heal the drop: %v", err)
	}
	checkGhosts(t, d, gs, data)
	if f.Resends() == 0 {
		t.Error("healing left no resend trace")
	}
	if st := plan.Stats(); st.Drops != 1 {
		t.Errorf("fault stats %+v", st)
	}
}

func TestGatherHealsCorruptionAndDelay(t *testing.T) {
	plan := simnet.NewFaultPlan(
		simnet.FaultEvent{Kind: simnet.FaultCorrupt, Src: 2, Dst: 1, Seq: 0},
		simnet.FaultEvent{Kind: simnet.FaultDelay, Src: 0, Dst: 1, Seq: 0, Delay: 2},
	)
	d, gs, sch, f := faultyFixture(t, plan)
	data := mkStateData(d, gs)
	if err := sch.GatherStates(f, data); err != nil {
		t.Fatalf("gather did not heal: %v", err)
	}
	checkGhosts(t, d, gs, data)
	if plan.Unfired() != 0 {
		t.Errorf("%d scheduled faults never fired", plan.Unfired())
	}
}

func TestScatterAddHealsFaults(t *testing.T) {
	plan := simnet.NewFaultPlan(
		simnet.FaultEvent{Kind: simnet.FaultDrop, Src: 1, Dst: 0, Seq: 0},
		simnet.FaultEvent{Kind: simnet.FaultDuplicate, Src: 1, Dst: 2, Seq: 0},
	)
	d, gs, sch, f := faultyFixture(t, plan)
	// Ghost slots on processor 1 carry contributions back to owners; a
	// duplicate delivery must not double-accumulate.
	data := make([][]euler.State, d.NProc)
	for p := 0; p < d.NProc; p++ {
		data[p] = make([]euler.State, gs.TotalSize(p))
	}
	base := d.Count(1)
	for si := range gs.Ghosts(1) {
		data[1][base+si][0] = 1
	}
	if err := sch.ScatterAddStates(f, data); err != nil {
		t.Fatalf("scatter-add did not heal: %v", err)
	}
	for p := 0; p < d.NProc; p++ {
		for li := 0; li < d.Count(p); li++ {
			if v := data[p][li][0]; v != 0 && v != 1 {
				t.Errorf("proc %d local %d accumulated %v (duplicate applied twice?)", p, li, v)
			}
		}
	}
	// Every owner vertex ghosted on proc 1 received exactly one unit.
	total := 0.0
	for p := 0; p < d.NProc; p++ {
		for li := 0; li < d.Count(p); li++ {
			total += data[p][li][0]
		}
	}
	if want := float64(len(gs.Ghosts(1))); total != want {
		t.Errorf("scatter-add accumulated %v units, want %v", total, want)
	}
}

func TestFloatsGatherHealsWildcardFaults(t *testing.T) {
	plan := simnet.NewFaultPlan(
		simnet.FaultEvent{Kind: simnet.FaultDrop, Src: -1, Dst: -1, Seq: 0},
		simnet.FaultEvent{Kind: simnet.FaultCorrupt, Src: -1, Dst: -1, Seq: 0},
	)
	d, gs, sch, f := faultyFixture(t, plan)
	data := make([][]float64, d.NProc)
	for p := 0; p < d.NProc; p++ {
		data[p] = make([]float64, gs.TotalSize(p))
		for li, g := range d.L2G[p] {
			data[p][li] = float64(g)
		}
	}
	if err := sch.GatherFloats(f, data); err != nil {
		t.Fatalf("float gather did not heal: %v", err)
	}
	for p := 0; p < d.NProc; p++ {
		base := d.Count(p)
		for si, g := range gs.Ghosts(p) {
			if data[p][base+si] != float64(g) {
				t.Errorf("proc %d float ghost of %d = %v", p, g, data[p][base+si])
			}
		}
	}
}

func TestNodeDownIsNotRetried(t *testing.T) {
	plan := simnet.NewFaultPlan(simnet.FaultEvent{Kind: simnet.FaultCrash, Node: 0, Cycle: 0})
	d, gs, sch, f := faultyFixture(t, plan)
	f.BeginCycle(0)
	data := mkStateData(d, gs)
	err := sch.GatherStates(f, data)
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("gather with crashed node returned %v, want ErrNodeDown", err)
	}
}

func TestHealingGivesUpAfterBoundedAttempts(t *testing.T) {
	// Drop every copy, including replays: the retained copy itself is
	// dropped again each time it is re-sent... it is not (Rerequest
	// bypasses the plan), so instead drop the only send and then also
	// corrupt the sequence space by never sending at all on the pair:
	// simplest unhealable case is a receive on a pair that never sent.
	f := simnet.New(2)
	_, err := recvHealing(f, 1, 0)
	if !errors.Is(err, ErrNoPending) {
		t.Fatalf("recv on silent pair returned %v, want ErrNoPending", err)
	}
}
