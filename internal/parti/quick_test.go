package parti

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eul3d/internal/euler"
	"eul3d/internal/simnet"
)

// TestQuickGatherAlwaysDeliversOwnerValues drives random distributions and
// reference patterns through the inspector/executor and checks the
// fundamental contract: after a gather, every localized reference reads
// the owner's value.
func TestQuickGatherAlwaysDeliversOwnerValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		nproc := 1 + rng.Intn(6)
		part := make([]int32, n)
		for i := range part {
			part[i] = int32(rng.Intn(nproc))
		}
		d, err := NewDist(part, nproc)
		if err != nil {
			return false
		}
		gs := NewGhostSpace(d)
		refs := make([][]int32, nproc)
		for p := 0; p < nproc; p++ {
			for k := rng.Intn(3 * n); k > 0; k-- {
				refs[p] = append(refs[p], int32(rng.Intn(n)))
			}
		}
		sch := BuildSchedule(gs, refs)
		fab := simnet.New(nproc)
		data := make([][]euler.State, nproc)
		for p := 0; p < nproc; p++ {
			data[p] = make([]euler.State, gs.TotalSize(p))
			for li, g := range d.L2G[p] {
				data[p][li][0] = float64(g)
			}
		}
		if err := sch.GatherStates(fab, data); err != nil {
			return false
		}
		for p := 0; p < nproc; p++ {
			for _, g := range refs[p] {
				if data[p][gs.Localize(p, g)][0] != float64(g) {
					return false
				}
			}
			if fab.Pending(p) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickScatterAddConserves checks that scatter-add moves mass without
// creating or destroying it, for random distributions and patterns.
func TestQuickScatterAddConserves(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		nproc := 1 + rng.Intn(5)
		part := make([]int32, n)
		for i := range part {
			part[i] = int32(rng.Intn(nproc))
		}
		d, err := NewDist(part, nproc)
		if err != nil {
			return false
		}
		gs := NewGhostSpace(d)
		refs := make([][]int32, nproc)
		for p := 0; p < nproc; p++ {
			for k := rng.Intn(2 * n); k > 0; k-- {
				refs[p] = append(refs[p], int32(rng.Intn(n)))
			}
		}
		sch := BuildSchedule(gs, refs)
		fab := simnet.New(nproc)
		data := make([][]float64, nproc)
		want := 0.0
		for p := 0; p < nproc; p++ {
			data[p] = make([]float64, gs.TotalSize(p))
			for li := range data[p] {
				data[p][li] = rng.NormFloat64()
				want += data[p][li]
			}
		}
		if err := sch.ScatterAddFloats(fab, data); err != nil {
			return false
		}
		got := 0.0
		for p := 0; p < nproc; p++ {
			for _, v := range data[p] {
				got += v
			}
		}
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickIncrementalNeverRefetches: building a schedule twice from the
// same references must yield an empty incremental schedule.
func TestQuickIncrementalNeverRefetches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		nproc := 2 + rng.Intn(4)
		part := make([]int32, n)
		for i := range part {
			part[i] = int32(rng.Intn(nproc))
		}
		d, err := NewDist(part, nproc)
		if err != nil {
			return false
		}
		gs := NewGhostSpace(d)
		refs := make([][]int32, nproc)
		for p := 0; p < nproc; p++ {
			for k := rng.Intn(2 * n); k > 0; k-- {
				refs[p] = append(refs[p], int32(rng.Intn(n)))
			}
		}
		first := BuildSchedule(gs, refs)
		second, reused := BuildIncremental(gs, refs)
		return second.Items() == 0 && reused == first.Items()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
