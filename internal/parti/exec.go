package parti

import (
	"fmt"

	"eul3d/internal/euler"
	"eul3d/internal/simnet"
)

// This file splits the executors into per-processor send and receive
// halves. The whole-schedule executors in parti.go loop the halves over
// all processors (the sequential-orchestration mode); the concurrent MIMD
// mode of the distributed solver runs one goroutine per processor, each
// calling its own half between barriers.

// SendGatherStates packs and sends processor q's owned values for every
// destination of the schedule.
func (s *Schedule) SendGatherStates(f *simnet.Fabric, q int, data [][]euler.State) error {
	for p := 0; p < s.d.NProc; p++ {
		idx := s.sendIdx[q][p]
		if len(idx) == 0 {
			continue
		}
		buf := make([]float64, 0, len(idx)*euler.NVar)
		for _, li := range idx {
			v := data[q][li]
			buf = append(buf, v[:]...)
		}
		if err := f.Send(q, p, buf); err != nil {
			return err
		}
	}
	return nil
}

// RecvGatherStates receives processor p's ghost values from every sender
// of the schedule.
func (s *Schedule) RecvGatherStates(f *simnet.Fabric, p int, data [][]euler.State) error {
	for q := 0; q < s.d.NProc; q++ {
		slots := s.recvSlot[p][q]
		if len(slots) == 0 {
			continue
		}
		buf, err := recvHealing(f, p, q)
		if err != nil {
			return err
		}
		if len(buf) != len(slots)*euler.NVar {
			return fmt.Errorf("parti: gather %d<-%d: got %d floats, want %d", p, q, len(buf), len(slots)*euler.NVar)
		}
		for i, slot := range slots {
			copy(data[p][slot][:], buf[i*euler.NVar:(i+1)*euler.NVar])
		}
	}
	return nil
}

// SendScatterStates sends processor p's ghost accumulations back to their
// owners and zeroes the ghost slots.
func (s *Schedule) SendScatterStates(f *simnet.Fabric, p int, data [][]euler.State) error {
	for q := 0; q < s.d.NProc; q++ {
		slots := s.recvSlot[p][q]
		if len(slots) == 0 {
			continue
		}
		buf := make([]float64, 0, len(slots)*euler.NVar)
		for _, slot := range slots {
			v := data[p][slot]
			buf = append(buf, v[:]...)
			data[p][slot] = euler.State{}
		}
		if err := f.Send(p, q, buf); err != nil {
			return err
		}
	}
	return nil
}

// RecvScatterStates receives and accumulates the contributions owned by
// processor q.
func (s *Schedule) RecvScatterStates(f *simnet.Fabric, q int, data [][]euler.State) error {
	for p := 0; p < s.d.NProc; p++ {
		idx := s.sendIdx[q][p]
		if len(idx) == 0 {
			continue
		}
		buf, err := recvHealing(f, q, p)
		if err != nil {
			return err
		}
		if len(buf) != len(idx)*euler.NVar {
			return fmt.Errorf("parti: scatter-add %d<-%d: got %d floats, want %d", q, p, len(buf), len(idx)*euler.NVar)
		}
		for i, li := range idx {
			for k := 0; k < euler.NVar; k++ {
				data[q][li][k] += buf[i*euler.NVar+k]
			}
		}
	}
	return nil
}

// SendGatherFloats / RecvGatherFloats / SendScatterFloats /
// RecvScatterFloats are the scalar-array counterparts.

// SendGatherFloats packs and sends processor q's owned scalars.
func (s *Schedule) SendGatherFloats(f *simnet.Fabric, q int, data [][]float64) error {
	for p := 0; p < s.d.NProc; p++ {
		idx := s.sendIdx[q][p]
		if len(idx) == 0 {
			continue
		}
		buf := make([]float64, len(idx))
		for i, li := range idx {
			buf[i] = data[q][li]
		}
		if err := f.Send(q, p, buf); err != nil {
			return err
		}
	}
	return nil
}

// RecvGatherFloats receives processor p's scalar ghosts.
func (s *Schedule) RecvGatherFloats(f *simnet.Fabric, p int, data [][]float64) error {
	for q := 0; q < s.d.NProc; q++ {
		slots := s.recvSlot[p][q]
		if len(slots) == 0 {
			continue
		}
		buf, err := recvHealing(f, p, q)
		if err != nil {
			return err
		}
		if len(buf) != len(slots) {
			return fmt.Errorf("parti: gather %d<-%d: got %d floats, want %d", p, q, len(buf), len(slots))
		}
		for i, slot := range slots {
			data[p][slot] = buf[i]
		}
	}
	return nil
}

// SendScatterFloats sends processor p's scalar ghost accumulations home,
// zeroing the slots.
func (s *Schedule) SendScatterFloats(f *simnet.Fabric, p int, data [][]float64) error {
	for q := 0; q < s.d.NProc; q++ {
		slots := s.recvSlot[p][q]
		if len(slots) == 0 {
			continue
		}
		buf := make([]float64, len(slots))
		for i, slot := range slots {
			buf[i] = data[p][slot]
			data[p][slot] = 0
		}
		if err := f.Send(p, q, buf); err != nil {
			return err
		}
	}
	return nil
}

// RecvScatterFloats receives and accumulates scalars owned by q.
func (s *Schedule) RecvScatterFloats(f *simnet.Fabric, q int, data [][]float64) error {
	for p := 0; p < s.d.NProc; p++ {
		idx := s.sendIdx[q][p]
		if len(idx) == 0 {
			continue
		}
		buf, err := recvHealing(f, q, p)
		if err != nil {
			return err
		}
		if len(buf) != len(idx) {
			return fmt.Errorf("parti: scatter-add %d<-%d: got %d floats, want %d", q, p, len(buf), len(idx))
		}
		for i, li := range idx {
			data[q][li] += buf[i]
		}
	}
	return nil
}
