package parti

import (
	"errors"
	"fmt"
	"time"

	"eul3d/internal/simnet"
)

// Typed executor errors, re-exported from the transport layer so callers
// of the PARTI executors can match failure classes without importing
// simnet. ErrNoPending and ErrCorrupt surface only after the bounded
// retry/re-request protocol below has been exhausted; ErrNodeDown is never
// retried (a crashed sender cannot retransmit) and must be handled by a
// checkpoint-level recovery orchestrator.
var (
	ErrNoPending = simnet.ErrNoPending
	ErrCorrupt   = simnet.ErrCorrupt
	ErrNodeDown  = simnet.ErrNodeDown
)

const (
	// maxRecvAttempts bounds the heal loop: one optimistic receive plus
	// up to maxRecvAttempts-1 re-request/retry rounds.
	maxRecvAttempts = 6
	// backoffBase is the first retry's wait; each further round doubles it.
	// The simulated fabric replays synchronously, so this stays tiny — it
	// models the pacing a real NIC would apply, and yields the processor
	// between rounds of the concurrent MIMD mode.
	backoffBase = 20 * time.Microsecond
)

// recvHealing is Fabric.Recv wrapped in the executors' bounded ARQ
// protocol: a dropped, corrupted or delayed halo message is healed by
// re-requesting the sender's retained copy with exponential backoff,
// instead of aborting the whole solve. The fault-free fast path is a
// single Recv call.
func recvHealing(f *simnet.Fabric, dst, src int) ([]float64, error) {
	buf, err := f.Recv(dst, src)
	if err == nil {
		return buf, nil
	}
	for attempt := 1; attempt < maxRecvAttempts; attempt++ {
		if !errors.Is(err, simnet.ErrNoPending) && !errors.Is(err, simnet.ErrCorrupt) {
			return nil, err // node down or a caller bug: not healable here
		}
		time.Sleep(backoffBase << (attempt - 1))
		if rerr := f.Rerequest(dst, src); rerr != nil {
			if errors.Is(rerr, simnet.ErrNodeDown) {
				return nil, rerr
			}
			// Nothing retained to replay (e.g. the message is merely
			// delayed, not lost): keep polling.
		}
		if buf, err = f.Recv(dst, src); err == nil {
			return buf, nil
		}
	}
	return nil, fmt.Errorf("parti: recv %d<-%d unhealed after %d attempts: %w", dst, src, maxRecvAttempts, err)
}
