// Package parti reimplements the PARTI runtime primitives (Parallel
// Automated Runtime Toolkit at ICASE) that the paper used to port EUL3D to
// the Intel Touchstone Delta. The key pieces are:
//
//   - a translation table mapping global indices to (processor, local
//     offset) pairs (Dist);
//   - the inspector, which examines the off-processor references of a loop
//     and produces a communication Schedule (BuildSchedule), deduplicating
//     references through a hash table;
//   - incremental schedules (BuildIncremental), which fetch only the
//     off-processor data not already covered by pre-existing schedules —
//     the communication optimization of Section 4.3;
//   - executors (Gather*, ScatterAdd*) that move ghost data through the
//     simnet fabric, packing all values for the same destination into one
//     message to amortize latency.
//
// Ghost copies live past the end of each processor's owned range: a
// distributed array on processor p has layout [owned values | ghosts].
package parti

import (
	"fmt"
	"sort"

	"eul3d/internal/euler"
	"eul3d/internal/simnet"
)

// Dist is the translation table of a distributed index space.
type Dist struct {
	NProc int
	Owner []int32   // global -> owning processor
	Local []int32   // global -> local offset on the owner
	L2G   [][]int32 // processor -> local offset -> global
}

// NewDist builds the translation table from a partition assignment.
func NewDist(part []int32, nproc int) (*Dist, error) {
	d := &Dist{
		NProc: nproc,
		Owner: make([]int32, len(part)),
		Local: make([]int32, len(part)),
		L2G:   make([][]int32, nproc),
	}
	for g, p := range part {
		if p < 0 || int(p) >= nproc {
			return nil, fmt.Errorf("parti: global %d assigned to invalid processor %d", g, p)
		}
		d.Owner[g] = p
		d.Local[g] = int32(len(d.L2G[p]))
		d.L2G[p] = append(d.L2G[p], int32(g))
	}
	return d, nil
}

// Count returns the number of indices owned by processor p.
func (d *Dist) Count(p int) int { return len(d.L2G[p]) }

// GhostSpace tracks the ghost slots allocated on each processor across one
// or more schedules, deduplicating by global index through a hash table —
// the mechanism behind PARTI's incremental schedules ("hash tables are used
// to omit duplicate off-processor data references").
type GhostSpace struct {
	d     *Dist
	slot  []map[int32]int32 // per proc: global -> ghost slot (0-based past owned)
	order [][]int32         // per proc: ghost slot -> global
}

// NewGhostSpace creates an empty ghost space over d.
func NewGhostSpace(d *Dist) *GhostSpace {
	gs := &GhostSpace{
		d:     d,
		slot:  make([]map[int32]int32, d.NProc),
		order: make([][]int32, d.NProc),
	}
	for p := range gs.slot {
		gs.slot[p] = make(map[int32]int32)
	}
	return gs
}

// NumGhosts returns the ghost count currently allocated on processor p.
func (gs *GhostSpace) NumGhosts(p int) int { return len(gs.order[p]) }

// Ghosts returns the global indices backing processor p's ghost slots, in
// slot order (ghost slot s holds the value of global Ghosts(p)[s]). The
// returned slice aliases internal state and must not be modified; the
// checkpoint/restart path uses it to rebuild ghost copies without
// communication.
func (gs *GhostSpace) Ghosts(p int) []int32 { return gs.order[p] }

// TotalSize returns owned+ghost storage required on processor p.
func (gs *GhostSpace) TotalSize(p int) int { return gs.d.Count(p) + len(gs.order[p]) }

// Localize translates a global reference on processor p into a local index:
// owned indices map to their local offset, off-processor indices to a ghost
// slot (allocated on first use). This is the inspector's address
// translation.
func (gs *GhostSpace) Localize(p int, global int32) int32 {
	if gs.d.Owner[global] == int32(p) {
		return gs.d.Local[global]
	}
	if s, ok := gs.slot[p][global]; ok {
		return int32(gs.d.Count(p)) + s
	}
	s := int32(len(gs.order[p]))
	gs.slot[p][global] = s
	gs.order[p] = append(gs.order[p], global)
	return int32(gs.d.Count(p)) + s
}

// Schedule is a communication pattern: for each (sender q, receiver p)
// pair, the owned local offsets q must pack and the ghost slots p must
// fill, in matching order.
type Schedule struct {
	d *Dist
	// sendIdx[q][p]: local offsets on q to send to p.
	sendIdx [][][]int32
	// recvSlot[p][q]: absolute local slots on p receiving from q.
	recvSlot [][][]int32
	nItems   int // total ghost values moved per execution
}

// buildFromGlobals creates a schedule that fills, for each processor p, the
// ghost slots of the listed globals (which must already be allocated in
// gs).
func buildFromGlobals(gs *GhostSpace, newGhosts [][]int32) *Schedule {
	d := gs.d
	s := &Schedule{
		d:        d,
		sendIdx:  make([][][]int32, d.NProc),
		recvSlot: make([][][]int32, d.NProc),
	}
	for p := 0; p < d.NProc; p++ {
		s.sendIdx[p] = make([][]int32, d.NProc)
		s.recvSlot[p] = make([][]int32, d.NProc)
	}
	for p := 0; p < d.NProc; p++ {
		// Deterministic order: sort by owner then global id.
		gl := append([]int32(nil), newGhosts[p]...)
		sort.Slice(gl, func(a, b int) bool {
			oa, ob := d.Owner[gl[a]], d.Owner[gl[b]]
			if oa != ob {
				return oa < ob
			}
			return gl[a] < gl[b]
		})
		for _, g := range gl {
			q := int(d.Owner[g])
			s.sendIdx[q][p] = append(s.sendIdx[q][p], d.Local[g])
			slot := int32(d.Count(p)) + gs.slot[p][g]
			s.recvSlot[p][q] = append(s.recvSlot[p][q], slot)
			s.nItems++
		}
	}
	return s
}

// BuildSchedule is the inspector: given, per processor, the global indices
// its loops reference (duplicates and owned indices allowed — they are
// hashed out), it allocates ghost slots in gs and returns the schedule that
// fills them. refs[p] lists the references made by processor p.
func BuildSchedule(gs *GhostSpace, refs [][]int32) *Schedule {
	d := gs.d
	newGhosts := make([][]int32, d.NProc)
	for p := 0; p < d.NProc; p++ {
		for _, g := range refs[p] {
			if d.Owner[g] == int32(p) {
				continue
			}
			if _, ok := gs.slot[p][g]; ok {
				continue // duplicate (hash table dedup)
			}
			gs.Localize(p, g)
			newGhosts[p] = append(newGhosts[p], g)
		}
	}
	return buildFromGlobals(gs, newGhosts)
}

// BuildIncremental is BuildSchedule with existing coverage made explicit:
// identical behaviour (ghosts already allocated in gs are skipped), but it
// also reports how many references were satisfied by pre-existing
// schedules, which is the measurement behind the paper's incremental-
// schedule optimization.
func BuildIncremental(gs *GhostSpace, refs [][]int32) (sched *Schedule, reused int) {
	d := gs.d
	for p := 0; p < d.NProc; p++ {
		seen := make(map[int32]bool)
		for _, g := range refs[p] {
			if d.Owner[g] != int32(p) && !seen[g] {
				seen[g] = true
				if _, ok := gs.slot[p][g]; ok {
					reused++
				}
			}
		}
	}
	return BuildSchedule(gs, refs), reused
}

// Items returns the number of ghost values moved per execution.
func (s *Schedule) Items() int { return s.nItems }

// Messages returns the number of point-to-point messages per execution
// (one per communicating pair and direction).
func (s *Schedule) Messages() int {
	n := 0
	for q := range s.sendIdx {
		for p := range s.sendIdx[q] {
			if len(s.sendIdx[q][p]) > 0 {
				n++
			}
		}
	}
	return n
}

// PairVolumes returns, for each (sender, receiver) pair with traffic, the
// number of values exchanged. Used by the Delta machine model.
func (s *Schedule) PairVolumes() map[[2]int]int {
	out := make(map[[2]int]int)
	for q := range s.sendIdx {
		for p := range s.sendIdx[q] {
			if n := len(s.sendIdx[q][p]); n > 0 {
				out[[2]int{q, p}] = n
			}
		}
	}
	return out
}

// GatherStates executes the schedule for per-processor State arrays laid
// out [owned | ghosts]: owners pack the scheduled values (one message per
// destination) and receivers store them into ghost slots.
func (s *Schedule) GatherStates(f *simnet.Fabric, data [][]euler.State) error {
	for q := 0; q < s.d.NProc; q++ {
		if err := s.SendGatherStates(f, q, data); err != nil {
			return err
		}
	}
	for p := 0; p < s.d.NProc; p++ {
		if err := s.RecvGatherStates(f, p, data); err != nil {
			return err
		}
	}
	return nil
}

// ScatterAddStates executes the transpose of the gather: ghost-slot values
// are sent back to their owners and accumulated there, and the ghost slots
// are zeroed. This closes the edge loops whose cross-partition edges
// accumulated into ghosts.
func (s *Schedule) ScatterAddStates(f *simnet.Fabric, data [][]euler.State) error {
	for p := 0; p < s.d.NProc; p++ {
		if err := s.SendScatterStates(f, p, data); err != nil {
			return err
		}
	}
	for q := 0; q < s.d.NProc; q++ {
		if err := s.RecvScatterStates(f, q, data); err != nil {
			return err
		}
	}
	return nil
}

// GatherFloats is GatherStates for scalar per-vertex arrays.
func (s *Schedule) GatherFloats(f *simnet.Fabric, data [][]float64) error {
	for q := 0; q < s.d.NProc; q++ {
		if err := s.SendGatherFloats(f, q, data); err != nil {
			return err
		}
	}
	for p := 0; p < s.d.NProc; p++ {
		if err := s.RecvGatherFloats(f, p, data); err != nil {
			return err
		}
	}
	return nil
}

// ScatterAddFloats is ScatterAddStates for scalar per-vertex arrays.
func (s *Schedule) ScatterAddFloats(f *simnet.Fabric, data [][]float64) error {
	for p := 0; p < s.d.NProc; p++ {
		if err := s.SendScatterFloats(f, p, data); err != nil {
			return err
		}
	}
	for q := 0; q < s.d.NProc; q++ {
		if err := s.RecvScatterFloats(f, q, data); err != nil {
			return err
		}
	}
	return nil
}
