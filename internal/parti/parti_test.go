package parti

import (
	"math"
	"math/rand"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/simnet"
)

// chainDist builds a distribution of n globals over nproc in blocks.
func chainDist(t *testing.T, n, nproc int) *Dist {
	t.Helper()
	part := make([]int32, n)
	for i := range part {
		part[i] = int32(i * nproc / n)
	}
	d, err := NewDist(part, nproc)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDistRoundTrip(t *testing.T) {
	d := chainDist(t, 20, 4)
	for g := int32(0); g < 20; g++ {
		p := d.Owner[g]
		if d.L2G[p][d.Local[g]] != g {
			t.Fatalf("global %d: owner %d local %d does not round trip", g, p, d.Local[g])
		}
	}
	total := 0
	for p := 0; p < 4; p++ {
		total += d.Count(p)
	}
	if total != 20 {
		t.Errorf("counts sum to %d", total)
	}
}

func TestNewDistRejectsBadProc(t *testing.T) {
	if _, err := NewDist([]int32{0, 5}, 2); err == nil {
		t.Error("accepted out-of-range processor")
	}
}

func TestLocalizeOwnedAndGhost(t *testing.T) {
	d := chainDist(t, 10, 2)
	gs := NewGhostSpace(d)
	// Owned: identity-ish.
	if got := gs.Localize(0, 2); got != d.Local[2] {
		t.Errorf("owned localize = %d", got)
	}
	// Ghost: past owned range, stable on repeat (hash dedup).
	a := gs.Localize(0, 7)
	b := gs.Localize(0, 7)
	if a != b {
		t.Errorf("ghost localize not stable: %d vs %d", a, b)
	}
	if int(a) < d.Count(0) {
		t.Errorf("ghost slot %d inside owned range", a)
	}
	if gs.NumGhosts(0) != 1 {
		t.Errorf("ghosts = %d, want 1", gs.NumGhosts(0))
	}
}

func TestScheduleGatherRoundTrip(t *testing.T) {
	n, nproc := 40, 4
	d := chainDist(t, n, nproc)
	gs := NewGhostSpace(d)
	rng := rand.New(rand.NewSource(3))

	// Random cross references.
	refs := make([][]int32, nproc)
	for p := 0; p < nproc; p++ {
		for k := 0; k < 25; k++ {
			refs[p] = append(refs[p], int32(rng.Intn(n)))
		}
	}
	sch := BuildSchedule(gs, refs)
	f := simnet.New(nproc)

	// Owned data: value = global id (in every component).
	data := make([][]euler.State, nproc)
	for p := 0; p < nproc; p++ {
		data[p] = make([]euler.State, gs.TotalSize(p))
		for li, g := range d.L2G[p] {
			for k := 0; k < euler.NVar; k++ {
				data[p][li][k] = float64(g) + float64(k)/10
			}
		}
	}
	if err := sch.GatherStates(f, data); err != nil {
		t.Fatal(err)
	}
	// Every referenced global must now be readable at its local address.
	for p := 0; p < nproc; p++ {
		for _, g := range refs[p] {
			li := gs.Localize(p, g)
			for k := 0; k < euler.NVar; k++ {
				want := float64(g) + float64(k)/10
				if data[p][li][k] != want {
					t.Fatalf("proc %d global %d: got %v, want %v", p, g, data[p][li][k], want)
				}
			}
		}
	}
	if f.Pending(0)+f.Pending(1)+f.Pending(2)+f.Pending(3) != 0 {
		t.Error("messages left undelivered")
	}
}

func TestScatterAddInvertsGather(t *testing.T) {
	n, nproc := 30, 3
	d := chainDist(t, n, nproc)
	gs := NewGhostSpace(d)
	refs := make([][]int32, nproc)
	for p := 0; p < nproc; p++ {
		for g := 0; g < n; g += p + 2 {
			refs[p] = append(refs[p], int32(g))
		}
	}
	sch := BuildSchedule(gs, refs)
	f := simnet.New(nproc)

	data := make([][]euler.State, nproc)
	var wantTotal float64
	for p := 0; p < nproc; p++ {
		data[p] = make([]euler.State, gs.TotalSize(p))
		for li := range data[p] {
			data[p][li][0] = float64(p*100 + li)
			wantTotal += data[p][li][0]
		}
	}
	if err := sch.ScatterAddStates(f, data); err != nil {
		t.Fatal(err)
	}
	// Conservation: total over all arrays unchanged; ghosts zeroed.
	var got float64
	for p := 0; p < nproc; p++ {
		for li := range data[p] {
			got += data[p][li][0]
			if li >= d.Count(p) && data[p][li][0] != 0 {
				t.Fatalf("ghost slot %d on %d not zeroed", li, p)
			}
		}
	}
	if math.Abs(got-wantTotal) > 1e-9 {
		t.Errorf("scatter-add not conservative: %v vs %v", got, wantTotal)
	}
}

func TestFloatsGatherScatter(t *testing.T) {
	n, nproc := 24, 3
	d := chainDist(t, n, nproc)
	gs := NewGhostSpace(d)
	refs := make([][]int32, nproc)
	for p := 0; p < nproc; p++ {
		refs[p] = append(refs[p], int32((p*11+3)%n), int32((p*7+1)%n))
	}
	sch := BuildSchedule(gs, refs)
	f := simnet.New(nproc)
	data := make([][]float64, nproc)
	for p := 0; p < nproc; p++ {
		data[p] = make([]float64, gs.TotalSize(p))
		for li, g := range d.L2G[p] {
			data[p][li] = float64(g) * 1.5
		}
	}
	if err := sch.GatherFloats(f, data); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < nproc; p++ {
		for _, g := range refs[p] {
			li := gs.Localize(p, g)
			if data[p][li] != float64(g)*1.5 {
				t.Fatalf("proc %d global %d: %v", p, g, data[p][li])
			}
		}
	}
	// Scatter-add of ones from ghosts: each owner gains the ghost count.
	for p := 0; p < nproc; p++ {
		for li := d.Count(p); li < len(data[p]); li++ {
			data[p][li] = 1
		}
		for li := 0; li < d.Count(p); li++ {
			data[p][li] = 0
		}
	}
	if err := sch.ScatterAddFloats(f, data); err != nil {
		t.Fatal(err)
	}
	var total float64
	for p := 0; p < nproc; p++ {
		for li := 0; li < d.Count(p); li++ {
			total += data[p][li]
		}
	}
	if int(total) != sch.Items() {
		t.Errorf("scatter-add total %v != schedule items %d", total, sch.Items())
	}
}

func TestIncrementalScheduleDedups(t *testing.T) {
	n, nproc := 30, 3
	d := chainDist(t, n, nproc)
	gs := NewGhostSpace(d)

	refs := make([][]int32, nproc)
	refs[0] = []int32{15, 16, 25}
	refs[1] = []int32{0, 29}
	refs[2] = []int32{5}
	first := BuildSchedule(gs, refs)
	if first.Items() != 6 {
		t.Fatalf("first schedule items = %d", first.Items())
	}

	// Second loop references a superset: the incremental schedule must
	// fetch only the new items.
	refs2 := make([][]int32, nproc)
	refs2[0] = []int32{15, 16, 25, 26} // one new
	refs2[1] = []int32{0, 29}          // none new
	refs2[2] = []int32{5, 6}           // one new
	inc, reused := BuildIncremental(gs, refs2)
	if inc.Items() != 2 {
		t.Errorf("incremental items = %d, want 2", inc.Items())
	}
	if reused != 6 {
		t.Errorf("reused = %d, want 6", reused)
	}
}

func TestScheduleAggregatesMessages(t *testing.T) {
	// Many references to the same owner must travel in one message (the
	// paper: "packing various small messages with the same destinations
	// into one large message").
	n, nproc := 40, 2
	d := chainDist(t, n, nproc)
	gs := NewGhostSpace(d)
	refs := make([][]int32, nproc)
	for g := 20; g < 40; g++ {
		refs[0] = append(refs[0], int32(g)) // proc 0 references all of proc 1
	}
	sch := BuildSchedule(gs, refs)
	if sch.Messages() != 1 {
		t.Errorf("messages = %d, want 1", sch.Messages())
	}
	if sch.Items() != 20 {
		t.Errorf("items = %d, want 20", sch.Items())
	}
	f := simnet.New(nproc)
	data := make([][]euler.State, nproc)
	for p := 0; p < nproc; p++ {
		data[p] = make([]euler.State, gs.TotalSize(p))
	}
	if err := sch.GatherStates(f, data); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := f.Stats(1)
	if msgs != 1 {
		t.Errorf("fabric msgs from owner = %d, want 1", msgs)
	}
	if bytes != int64(20*euler.NVar*8) {
		t.Errorf("bytes = %d", bytes)
	}
}

func TestPairVolumes(t *testing.T) {
	d := chainDist(t, 10, 2)
	gs := NewGhostSpace(d)
	refs := make([][]int32, 2)
	refs[0] = []int32{7, 8}
	refs[1] = []int32{1}
	sch := BuildSchedule(gs, refs)
	pv := sch.PairVolumes()
	if pv[[2]int{1, 0}] != 2 || pv[[2]int{0, 1}] != 1 {
		t.Errorf("pair volumes = %v", pv)
	}
}
