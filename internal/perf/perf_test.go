package perf

import (
	"strings"
	"testing"
	"time"
)

func TestAccumAddAndStats(t *testing.T) {
	a := NewAccum("conv", "diss")
	a.Add(0, 250*time.Millisecond, 1_000_000)
	a.Add(0, 250*time.Millisecond, 500_000)
	a.Add(1, time.Second, 3_000_000)

	st := a.Stats()
	if len(st.Phases) != 2 {
		t.Fatalf("expected 2 phases, got %d", len(st.Phases))
	}
	conv := st.Phases[0]
	if conv.Name != "conv" || conv.Seconds != 0.5 || conv.Flops != 1_500_000 {
		t.Fatalf("conv phase = %+v", conv)
	}
	// 1.5 Mflop in 0.5 s = 3 Mflops.
	if conv.Mflops() != 3 {
		t.Fatalf("conv Mflops = %v, want 3", conv.Mflops())
	}
	total := st.Total()
	if total.Seconds != 1.5 || total.Flops != 4_500_000 {
		t.Fatalf("total = %+v", total)
	}
	if total.Mflops() != 3 {
		t.Fatalf("total Mflops = %v, want 3", total.Mflops())
	}
}

// A phase that never ran must report rate 0, not divide by zero.
func TestMflopsZeroSeconds(t *testing.T) {
	if got := (Phase{Flops: 100}).Mflops(); got != 0 {
		t.Fatalf("zero-time phase Mflops = %v, want 0", got)
	}
	if got := (Phase{Seconds: -1, Flops: 100}).Mflops(); got != 0 {
		t.Fatalf("negative-time phase Mflops = %v, want 0", got)
	}
	if got := (NewAccum("idle").Stats().Phases[0]).Mflops(); got != 0 {
		t.Fatalf("untouched accumulator phase Mflops = %v, want 0", got)
	}
}

// Stats snapshots must not alias the accumulator: charging more work after
// a snapshot leaves the snapshot unchanged.
func TestStatsSnapshotIndependence(t *testing.T) {
	a := NewAccum("step")
	a.Add(0, time.Second, 10)
	st := a.Stats()
	a.Add(0, time.Second, 90)
	if st.Phases[0].Flops != 10 {
		t.Fatalf("snapshot mutated: %+v", st.Phases[0])
	}
	if got := a.Stats().Phases[0].Flops; got != 100 {
		t.Fatalf("accumulator lost an Add: %d flops", got)
	}
}

// Add is on the per-color hot path of the pooled engines and must not
// allocate.
func TestAddZeroAllocs(t *testing.T) {
	a := NewAccum("hot")
	if allocs := testing.AllocsPerRun(100, func() {
		a.Add(0, time.Microsecond, 42)
	}); allocs != 0 {
		t.Fatalf("Add allocates %.1f times per call", allocs)
	}
}

// Merge must sum phases by name, keep first-appearance order, and not
// alias its inputs.
func TestMerge(t *testing.T) {
	a := Stats{Phases: []Phase{
		{Name: "conv", Seconds: 1, Flops: 100},
		{Name: "diss", Seconds: 2, Flops: 200},
	}}
	b := Stats{Phases: []Phase{
		{Name: "diss", Seconds: 3, Flops: 300},
		{Name: "update", Seconds: 4, Flops: 400},
	}}
	m := Merge(a, b)
	want := []Phase{
		{Name: "conv", Seconds: 1, Flops: 100},
		{Name: "diss", Seconds: 5, Flops: 500},
		{Name: "update", Seconds: 4, Flops: 400},
	}
	if len(m.Phases) != len(want) {
		t.Fatalf("merged %d phases, want %d: %+v", len(m.Phases), len(want), m.Phases)
	}
	for i, p := range want {
		if m.Phases[i] != p {
			t.Fatalf("phase %d = %+v, want %+v", i, m.Phases[i], p)
		}
	}
	// Mutating the merge must not write through to the inputs.
	m.Phases[0].Flops = 999
	if a.Phases[0].Flops != 100 {
		t.Fatalf("merge aliases its input: %+v", a.Phases[0])
	}
}

func TestMergeEmpty(t *testing.T) {
	if m := Merge(); len(m.Phases) != 0 {
		t.Fatalf("empty merge has %d phases", len(m.Phases))
	}
	if m := Merge(Stats{}, Stats{}); len(m.Phases) != 0 {
		t.Fatalf("merge of empty snapshots has %d phases", len(m.Phases))
	}
	one := Stats{Phases: []Phase{{Name: "step", Seconds: 1, Flops: 10}}}
	m := Merge(Stats{}, one)
	if len(m.Phases) != 1 || m.Phases[0] != one.Phases[0] {
		t.Fatalf("merge with empty = %+v", m.Phases)
	}
}

func TestStringTable(t *testing.T) {
	a := NewAccum("conv", "diss")
	a.Add(0, time.Second, 2_000_000)
	s := a.Stats().String()
	for _, want := range []string{"phase", "conv", "diss", "total"} {
		if !strings.Contains(s, want) {
			t.Fatalf("stats table missing %q:\n%s", want, s)
		}
	}
	if lines := strings.Count(s, "\n"); lines != 4 {
		t.Fatalf("expected header + 2 phases + total = 4 lines, got %d:\n%s", lines, s)
	}
}
