// Package perf is the thin instrumentation layer shared by the solver
// drivers: per-phase wall-clock accumulation paired with the analytic flop
// counts of internal/flops, so any solver can report a computational rate
// the same way the paper did (counted operations / measured seconds).
// Accumulation is allocation-free; building a Stats snapshot allocates and
// is meant for end-of-run reporting.
package perf

import (
	"fmt"
	"strings"
	"time"
)

// Phase is one instrumented section of a solver: its cumulative wall-clock
// time and the analytic flops attributed to it.
type Phase struct {
	Name    string
	Seconds float64
	Flops   int64
}

// Mflops returns the phase's computational rate in MFlops (0 when no time
// has been accumulated).
func (p Phase) Mflops() float64 {
	if p.Seconds <= 0 {
		return 0
	}
	return float64(p.Flops) / p.Seconds / 1e6
}

// Stats is a snapshot of a solver's per-phase timings.
type Stats struct {
	Phases []Phase
}

// Total returns the sum over all phases.
func (s Stats) Total() Phase {
	t := Phase{Name: "total"}
	for _, p := range s.Phases {
		t.Seconds += p.Seconds
		t.Flops += p.Flops
	}
	return t
}

// String renders the phases as an aligned table with a total row.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %12s %9s\n", "phase", "seconds", "Mflop", "Mflops")
	row := func(p Phase) {
		fmt.Fprintf(&b, "%-14s %10.3f %12.1f %9.0f\n",
			p.Name, p.Seconds, float64(p.Flops)/1e6, p.Mflops())
	}
	for _, p := range s.Phases {
		row(p)
	}
	row(s.Total())
	return b.String()
}

// Merge combines any number of snapshots phase-by-name: phases sharing a
// name sum their seconds and flops, and the result keeps first-appearance
// order. This is the fleet view — eul3dd's /metrics merges the per-engine
// snapshots of every cached engine into one aggregate breakdown.
func Merge(snaps ...Stats) Stats {
	var out Stats
	index := make(map[string]int)
	for _, s := range snaps {
		for _, p := range s.Phases {
			if i, ok := index[p.Name]; ok {
				out.Phases[i].Seconds += p.Seconds
				out.Phases[i].Flops += p.Flops
				continue
			}
			index[p.Name] = len(out.Phases)
			out.Phases = append(out.Phases, p)
		}
	}
	return out
}

// Accum accumulates per-phase durations and flop counts without
// allocating. Phases are identified by the index of their name in the
// NewAccum argument list.
type Accum struct {
	names []string
	ns    []int64
	flops []int64
}

// NewAccum builds an accumulator with one slot per phase name.
func NewAccum(names ...string) *Accum {
	return &Accum{
		names: names,
		ns:    make([]int64, len(names)),
		flops: make([]int64, len(names)),
	}
}

// Add charges duration d and the given flop count to a phase.
func (a *Accum) Add(phase int, d time.Duration, flops int64) {
	a.ns[phase] += int64(d)
	a.flops[phase] += flops
}

// Names returns the accumulator's phase names, indexed by slot.
func (a *Accum) Names() []string { return a.names }

// Stats snapshots the accumulator.
func (a *Accum) Stats() Stats {
	st := Stats{Phases: make([]Phase, len(a.names))}
	for i, n := range a.names {
		st.Phases[i] = Phase{Name: n, Seconds: float64(a.ns[i]) / 1e9, Flops: a.flops[i]}
	}
	return st
}
