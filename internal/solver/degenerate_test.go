package solver

import (
	"math"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
)

// TestEmptyMeshRun: a zero-vertex mesh must run (trivially) without
// panicking in either driver — the smoother used to index into the empty
// residual slice.
func TestEmptyMeshRun(t *testing.T) {
	m := &mesh.Mesh{}
	if err := m.Finish(); err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.5, 0)

	st := NewSingleGrid(m, p)
	if _, err := st.Run(Options{MaxCycles: 2}); err != nil {
		t.Fatalf("single grid on empty mesh: %v", err)
	}

	sm, err := NewSharedMemory(m, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	if _, err := sm.Run(Options{MaxCycles: 2}); err != nil {
		t.Fatalf("shared memory on empty mesh: %v", err)
	}
}

// TestSharedMemoryMatchesSingleGrid runs the pool-engine Steady next to the
// sequential one and requires residual histories to agree to roundoff,
// with per-phase stats accumulated on both.
func TestSharedMemoryMatchesSingleGrid(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(10, 6, 4, 17))
	if err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.675, 0)

	seq := NewSingleGrid(m, p)
	rseq, err := seq.Run(Options{MaxCycles: 8})
	if err != nil {
		t.Fatal(err)
	}

	par, err := NewSharedMemory(m, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	rpar, err := par.Run(Options{MaxCycles: 8})
	if err != nil {
		t.Fatal(err)
	}

	if len(rseq.History) != len(rpar.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(rseq.History), len(rpar.History))
	}
	for c := range rseq.History {
		rel := math.Abs(rseq.History[c]-rpar.History[c]) / (1e-300 + rseq.History[c])
		if rel > 1e-10 {
			t.Errorf("cycle %d: residuals diverge: %v vs %v", c, rseq.History[c], rpar.History[c])
		}
	}

	for _, st := range []*Steady{seq, par} {
		if tot := st.Stats().Total(); tot.Seconds <= 0 || tot.Flops <= 0 {
			t.Errorf("implausible stats total: %+v", tot)
		}
	}
	par.Close() // idempotent
}
