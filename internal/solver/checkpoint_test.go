package solver

import (
	"path/filepath"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
	"eul3d/internal/meshio"
)

// TestCheckpointResumeBitwise is the determinism contract for restart: run N
// cycles straight through, then run the same problem with a mid-run
// checkpoint, resume a fresh solver from the file, and demand bitwise
// identical residual history and solution.
func TestCheckpointResumeBitwise(t *testing.T) {
	const total, every = 8, 3
	spec := meshgen.DefaultChannel(8, 5, 4, 9)
	build := func() *Steady {
		m, err := meshgen.Channel(spec)
		if err != nil {
			t.Fatal(err)
		}
		return NewSingleGrid(m, euler.DefaultParams(0.6, 1))
	}

	// Uninterrupted reference run.
	ref, err := build().Run(Options{MaxCycles: total})
	if err != nil {
		t.Fatal(err)
	}

	// Checkpointed run, stopped partway.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	first, err := build().Run(Options{
		MaxCycles: 2 * every, CheckpointEvery: every, CheckpointPath: path,
		Mach: 0.6, AlphaDeg: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cycles != 2*every {
		t.Fatalf("first leg ran %d cycles", first.Cycles)
	}

	ck, err := meshio.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Cycle != 2*every || ck.Mach != 0.6 || ck.AlphaDeg != 1 {
		t.Fatalf("checkpoint = cycle %d mach %g alpha %g", ck.Cycle, ck.Mach, ck.AlphaDeg)
	}

	// Fresh solver resumed from the file.
	st := build()
	if err := st.Restore(ck); err != nil {
		t.Fatal(err)
	}
	resumed, err := st.Run(Options{MaxCycles: total})
	if err != nil {
		t.Fatal(err)
	}

	if resumed.Cycles != ref.Cycles || len(resumed.History) != len(ref.History) {
		t.Fatalf("resumed %d cycles / %d history, reference %d / %d",
			resumed.Cycles, len(resumed.History), ref.Cycles, len(ref.History))
	}
	for i := range ref.History {
		if resumed.History[i] != ref.History[i] {
			t.Fatalf("history[%d] = %v after resume, want %v (bitwise)", i, resumed.History[i], ref.History[i])
		}
	}
	for i := range ref.FineSolution {
		if resumed.FineSolution[i] != ref.FineSolution[i] {
			t.Fatalf("solution vertex %d differs after resume", i)
		}
	}
	if resumed.InitialNorm != ref.InitialNorm || resumed.FinalNorm != ref.FinalNorm {
		t.Errorf("norms differ: %v/%v vs %v/%v",
			resumed.InitialNorm, resumed.FinalNorm, ref.InitialNorm, ref.FinalNorm)
	}
}

// Multigrid resume: coarse levels are rebuilt from the restored fine grid
// every cycle, so the fine-grid snapshot is sufficient state.
func TestCheckpointResumeMultigridBitwise(t *testing.T) {
	const total, every = 6, 2
	build := func() *Steady {
		seq, err := meshgen.Sequence(meshgen.DefaultChannel(12, 6, 4, 17), 2)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewMultigrid(seq, euler.DefaultParams(0.5, 0.5), 1)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	ref, err := build().Run(Options{MaxCycles: total})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "mg.ckpt")
	if _, err := build().Run(Options{
		MaxCycles: every, CheckpointEvery: every, CheckpointPath: path,
	}); err != nil {
		t.Fatal(err)
	}
	ck, err := meshio.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	st := build()
	if err := st.Restore(ck); err != nil {
		t.Fatal(err)
	}
	resumed, err := st.Run(Options{MaxCycles: total})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.History {
		if resumed.History[i] != ref.History[i] {
			t.Fatalf("mg history[%d] = %v after resume, want %v", i, resumed.History[i], ref.History[i])
		}
	}
	for i := range ref.FineSolution {
		if resumed.FineSolution[i] != ref.FineSolution[i] {
			t.Fatalf("mg solution vertex %d differs after resume", i)
		}
	}
}

func TestRestoreRejectsBadCheckpoint(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(6, 4, 3, 9))
	if err != nil {
		t.Fatal(err)
	}
	st := NewSingleGrid(m, euler.DefaultParams(0.5, 0))
	if err := st.Restore(&meshio.Checkpoint{Cycle: 2, History: []float64{1}}); err == nil {
		t.Error("accepted history/cycle mismatch")
	}
	if err := st.Restore(&meshio.Checkpoint{Cycle: 0, Sol: make([]euler.State, 3)}); err == nil {
		t.Error("accepted wrong-size solution")
	}
}
