package solver

import (
	"context"
	"sync"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
)

func smallMesh(t *testing.T) *meshgen.ChannelSpec {
	t.Helper()
	spec := meshgen.DefaultChannel(8, 4, 3, 5)
	return &spec
}

// Cancelling the context mid-run stops the solve and returns the partial
// history with Cancelled set and no error.
func TestRunContextCancelMidFlight(t *testing.T) {
	m, err := meshgen.Channel(*smallMesh(t))
	if err != nil {
		t.Fatal(err)
	}
	st := NewSingleGrid(m, euler.DefaultParams(0.5, 0))
	ctx, cancel := context.WithCancel(context.Background())
	const stopAt = 7
	res, err := st.Run(Options{
		MaxCycles: 1000,
		Context:   ctx,
		Progress: func(cycle int, norm float64) {
			if cycle == stopAt {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatal("result not marked Cancelled")
	}
	// The cancel fires in the callback after cycle stopAt completes, so
	// exactly stopAt+1 cycles ran.
	if res.Cycles != stopAt+1 || len(res.History) != stopAt+1 {
		t.Errorf("cycles=%d len(history)=%d, want %d", res.Cycles, len(res.History), stopAt+1)
	}
}

// An already-cancelled context runs zero cycles.
func TestRunContextCancelledUpFront(t *testing.T) {
	m, err := meshgen.Channel(*smallMesh(t))
	if err != nil {
		t.Fatal(err)
	}
	st := NewSingleGrid(m, euler.DefaultParams(0.5, 0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := st.Run(Options{MaxCycles: 10, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || res.Cycles != 0 || len(res.History) != 0 {
		t.Errorf("cancelled=%v cycles=%d history=%d", res.Cancelled, res.Cycles, len(res.History))
	}
}

// Progress fires once per cycle with the same norms Run records, and a nil
// Context / nil Progress changes nothing (no Cancelled flag).
func TestRunProgressCallback(t *testing.T) {
	m, err := meshgen.Channel(*smallMesh(t))
	if err != nil {
		t.Fatal(err)
	}
	st := NewSingleGrid(m, euler.DefaultParams(0.5, 0))
	var cycles []int
	var norms []float64
	res, err := st.Run(Options{
		MaxCycles: 6,
		Progress:  func(c int, n float64) { cycles = append(cycles, c); norms = append(norms, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancelled {
		t.Error("run without context marked Cancelled")
	}
	if len(cycles) != 6 {
		t.Fatalf("progress fired %d times, want 6", len(cycles))
	}
	for i, c := range cycles {
		if c != i {
			t.Errorf("progress cycle[%d] = %d", i, c)
		}
		if norms[i] != res.History[i] {
			t.Errorf("progress norm[%d] = %g, history %g", i, norms[i], res.History[i])
		}
	}
}

// Close must be idempotent, safe under concurrent callers, and safe after
// a Run that returned an error (double-Close previously trusted callers).
func TestCloseIdempotentAfterFailedRun(t *testing.T) {
	m, err := meshgen.Channel(*smallMesh(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSharedMemory(m, euler.DefaultParams(0.5, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(Options{MaxCycles: 0}); err == nil {
		t.Fatal("Run with MaxCycles=0 should fail")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.Close()
		}()
	}
	wg.Wait()
	st.Close() // and once more after the pool is gone
}

// Reset returns a reused engine to the freestream state and clears any
// restored checkpoint, so back-to-back runs are bitwise identical.
func TestResetReproducesFreshRun(t *testing.T) {
	m, err := meshgen.Channel(*smallMesh(t))
	if err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.5, 1.0)
	st := NewSingleGrid(m, p)
	first, err := st.Run(Options{MaxCycles: 8})
	if err != nil {
		t.Fatal(err)
	}
	firstHist := append([]float64(nil), first.History...)
	st.Reset()
	second, err := st.Run(Options{MaxCycles: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.History) != len(firstHist) {
		t.Fatalf("history lengths differ: %d vs %d", len(second.History), len(firstHist))
	}
	for i := range firstHist {
		if second.History[i] != firstHist[i] {
			t.Fatalf("cycle %d: %g after Reset, %g fresh", i, second.History[i], firstHist[i])
		}
	}
}
