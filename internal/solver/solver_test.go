package solver

import (
	"bytes"
	"strings"
	"testing"

	"eul3d/internal/euler"
	"eul3d/internal/meshgen"
)

func TestSingleGridRunConverges(t *testing.T) {
	spec := meshgen.DefaultChannel(12, 6, 4, 3)
	spec.BumpHeight = 0
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := NewSingleGrid(m, euler.DefaultParams(0.5, 0))
	var log bytes.Buffer
	res, err := st.Run(Options{MaxCycles: 5, LogEvery: 2, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 5 || len(res.History) != 5 {
		t.Errorf("cycles %d history %d", res.Cycles, len(res.History))
	}
	if res.FinalNorm > 1e-11 {
		t.Errorf("freestream run residual %g", res.FinalNorm)
	}
	if !strings.Contains(log.String(), "cycle") {
		t.Error("no progress log emitted")
	}
	if len(res.FineSolution) != m.NV() {
		t.Error("missing fine solution")
	}
}

func TestMultigridRunToleranceStops(t *testing.T) {
	seq, err := meshgen.Sequence(meshgen.DefaultChannel(16, 8, 6, 17), 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewMultigrid(seq, euler.DefaultParams(0.3, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run(Options{MaxCycles: 400, Tolerance: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d cycles (final %g)", res.Cycles, res.FinalNorm)
	}
	if res.Cycles >= 400 {
		t.Error("tolerance did not stop the run early")
	}
	if res.Ordersof10 < 3 {
		t.Errorf("orders reduced = %v", res.Ordersof10)
	}
	if st.MG == nil {
		t.Error("MG handle not exposed")
	}
}

func TestRunValidation(t *testing.T) {
	spec := meshgen.DefaultChannel(4, 3, 3, 3)
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := NewSingleGrid(m, euler.DefaultParams(0.5, 0))
	if _, err := st.Run(Options{MaxCycles: 0}); err == nil {
		t.Error("accepted MaxCycles=0")
	}
}

func TestSetInitialWarmStart(t *testing.T) {
	spec := meshgen.DefaultChannel(10, 6, 4, 3)
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.5, 0)

	cold := NewSingleGrid(m, p)
	res1, err := cold.Run(Options{MaxCycles: 30})
	if err != nil {
		t.Fatal(err)
	}

	warm := NewSingleGrid(m, p)
	if err := warm.SetInitial(res1.FineSolution); err != nil {
		t.Fatal(err)
	}
	res2, err := warm.Run(Options{MaxCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The warm start must resume where the cold run left off, not at the
	// impulsive-start residual.
	if res2.InitialNorm > 2*res1.FinalNorm {
		t.Errorf("warm start residual %g vs cold final %g", res2.InitialNorm, res1.FinalNorm)
	}

	if err := warm.SetInitial(res1.FineSolution[:3]); err == nil {
		t.Error("accepted short initial solution")
	}
}
