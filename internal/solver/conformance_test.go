package solver

import (
	"fmt"
	"runtime"
	"testing"

	"eul3d/internal/dmsolver"
	"eul3d/internal/euler"
	"eul3d/internal/graph"
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
	"eul3d/internal/multigrid"
	"eul3d/internal/partition"
	"eul3d/internal/reorder"
	"eul3d/internal/smsolver"
)

// TestCrossEngineConformance is the cross-engine bitwise conformance
// suite: one mesh sequence, three solver engines — serial multigrid,
// pooled shared-memory multigrid at several worker counts, and the
// distributed-memory multigrid (both sequential orchestration and
// concurrent MIMD) — asserting bitwise-identical solutions and residual
// histories.
//
// Bitwise identity across engines requires identical floating-point
// accumulation order, so the suite runs on color-canonical meshes
// (reorder.ColorCanonical): the edge and boundary-face lists are stored
// in color-group order, making the sequential raw-order accumulation, the
// pooled engine's color-order accumulation, and the one-processor
// distributed solver's partition-local order one and the same. The norm
// reduction is blocked identically in all engines (euler.NormBlock).
// Multi-processor distributed runs reassociate per-vertex sums across
// partition boundaries and therefore agree to tight roundoff instead;
// that is asserted separately.
func TestCrossEngineConformance(t *testing.T) {
	for _, tc := range []struct {
		name          string
		gamma, levels int
	}{
		{"V-cycle-2-levels", 1, 2},
		{"W-cycle-3-levels", 2, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// The conformance meshes sit below the engine's default
			// serial-fallback threshold; pin it to zero so the pooled
			// engine really runs its pooled path here (the inline path has
			// its own bitwise test, smsolver's TestSerialCutoffBitwise).
			defer func(old int) { smsolver.SerialCutoffEdges = old }(smsolver.SerialCutoffEdges)
			smsolver.SerialCutoffEdges = 0

			raw, err := meshgen.Sequence(meshgen.DefaultChannel(10, 7, 5, 17), tc.levels)
			if err != nil {
				t.Fatal(err)
			}
			canon := make([]*mesh.Mesh, len(raw))
			cols := make([]smsolver.Colorings, len(raw))
			for i, m := range raw {
				cm, ec, fc, err := reorder.ColorCanonical(m)
				if err != nil {
					t.Fatal(err)
				}
				canon[i] = cm
				cols[i] = smsolver.Colorings{Edges: ec, Faces: fc}
			}
			p := euler.DefaultParams(0.675, 0)
			const cycles = 5

			// Reference: the serial FAS multigrid.
			serial, err := multigrid.New(canon, p, tc.gamma)
			if err != nil {
				t.Fatal(err)
			}
			refHist := make([]float64, cycles)
			for c := range refHist {
				refHist[c] = serial.Cycle()
			}
			refW := serial.Fine().W

			check := func(engine string, hist []float64, w []euler.State) {
				t.Helper()
				for c := range hist {
					if hist[c] != refHist[c] {
						t.Fatalf("%s: cycle %d residual %v, serial %v", engine, c, hist[c], refHist[c])
					}
				}
				if len(w) != len(refW) {
					t.Fatalf("%s: %d states, serial %d", engine, len(w), len(refW))
				}
				for i := range w {
					if w[i] != refW[i] {
						t.Fatalf("%s: vertex %d state %v, serial %v", engine, i, w[i], refW[i])
					}
				}
			}

			// Pooled shared-memory multigrid, several worker counts.
			for _, nw := range []int{1, 2, 3, 8} {
				mg, err := smsolver.NewMultigridColored(canon, p, tc.gamma, nw, cols)
				if err != nil {
					t.Fatal(err)
				}
				hist := make([]float64, cycles)
				for c := range hist {
					hist[c] = mg.Cycle()
				}
				check(fmt.Sprintf("pooled[workers=%d]", nw), hist, mg.Fine().W)
				mg.Close()
			}

			// Distributed multigrid on one processor: partition-local index
			// order equals mesh order, so it is bitwise too — in both the
			// sequential orchestration and the concurrent MIMD mode.
			parts := make([][]int32, len(canon))
			parts[0] = make([]int32, canon[0].NV())
			dmSeq, err := dmsolver.NewMultigrid(canon, parts, 1, p, tc.gamma)
			if err != nil {
				t.Fatal(err)
			}
			hist := make([]float64, cycles)
			for c := range hist {
				if hist[c], err = dmSeq.Cycle(); err != nil {
					t.Fatal(err)
				}
			}
			check("distributed[nproc=1]", hist, dmSeq.GatherSolution())

			dmConc, err := dmsolver.NewMultigrid(canon, parts, 1, p, tc.gamma)
			if err != nil {
				t.Fatal(err)
			}
			for c := range hist {
				if hist[c], err = dmConc.CycleConcurrent(); err != nil {
					t.Fatal(err)
				}
			}
			check("distributed-mimd[nproc=1]", hist, dmConc.GatherSolution())

			// Multi-processor distributed: partition boundaries reassociate
			// the per-vertex sums, so agreement is to roundoff only — and
			// the scheme's discrete switches (sensor max, positivity guard)
			// amplify the reassociation noise by orders of magnitude over
			// the startup transient of this small mesh. The loose bound is a
			// sanity cross-check (real defects show up at O(1)), not part of
			// the bitwise contract established above.
			g, err := graph.FromEdges(canon[0].NV(), canon[0].Edges)
			if err != nil {
				t.Fatal(err)
			}
			finePart, err := partition.Partition(g, canon[0].X, 4, partition.Spectral, 1)
			if err != nil {
				t.Fatal(err)
			}
			parts4 := make([][]int32, len(canon))
			parts4[0] = finePart
			dm4, err := dmsolver.NewMultigrid(canon, parts4, 4, p, tc.gamma)
			if err != nil {
				t.Fatal(err)
			}
			for c := range hist {
				norm, err := dm4.Cycle()
				if err != nil {
					t.Fatal(err)
				}
				if rel := relDiff(norm, refHist[c]); rel > 1e-4 {
					t.Fatalf("distributed[nproc=4]: cycle %d residual %v vs %v (rel %v)", c, norm, refHist[c], rel)
				}
			}
			w4 := dm4.GatherSolution()
			for i := range w4 {
				for k := 0; k < euler.NVar; k++ {
					if rel := relDiff(w4[i][k], refW[i][k]); rel > 1e-4 {
						t.Fatalf("distributed[nproc=4]: vertex %d var %d %v vs %v", i, k, w4[i][k], refW[i][k])
					}
				}
			}
		})
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := 1.0
	if ab := abs64(a); ab > m {
		m = ab
	}
	if bb := abs64(b); bb > m {
		m = bb
	}
	return d / m
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestSingleGridSoAConformance pins the pooled engine's SoA hot path
// directly against the serial []State reference: on a color-canonical
// mesh the sequential euler.Disc.Step (raw edge order, AoS layout) and
// the pooled smsolver.Solver (color order, SoA component streams) must
// produce bitwise-identical residual histories and solutions at every
// worker count — the state layout and the chunking are memory-placement
// choices, not numerical ones. The same solver instances must also keep
// the engine's zero-allocation contract on the SoA step path, which
// testing.AllocsPerRun enforces.
func TestSingleGridSoAConformance(t *testing.T) {
	defer func(old int) { smsolver.SerialCutoffEdges = old }(smsolver.SerialCutoffEdges)
	smsolver.SerialCutoffEdges = 0

	m, err := meshgen.Channel(meshgen.DefaultChannel(10, 7, 5, 17))
	if err != nil {
		t.Fatal(err)
	}
	cm, ec, fc, err := reorder.ColorCanonical(m)
	if err != nil {
		t.Fatal(err)
	}
	p := euler.DefaultParams(0.675, 0)
	const steps = 5

	// Serial reference: the sequential stepper on the canonical mesh.
	d := euler.NewDisc(cm, p)
	ws := euler.NewStepWorkspace(cm.NV())
	refW := make([]euler.State, cm.NV())
	d.InitUniform(refW)
	refHist := make([]float64, steps)
	for c := range refHist {
		refHist[c] = d.Step(refW, nil, ws)
	}

	for _, nw := range []int{1, 2, 3, 8} {
		s, err := smsolver.NewColored(cm, p, nw, ec, fc)
		if err != nil {
			t.Fatal(err)
		}
		w := make([]euler.State, cm.NV())
		s.InitUniform(w)
		for c := 0; c < steps; c++ {
			if norm := s.Step(w, nil); norm != refHist[c] {
				t.Fatalf("workers=%d: step %d norm %v, serial %v", nw, c, norm, refHist[c])
			}
		}
		for i := range w {
			if w[i] != refW[i] {
				t.Fatalf("workers=%d: vertex %d state %v, serial %v", nw, i, w[i], refW[i])
			}
		}
		// Collect the garbage from the previous worker count's solver
		// before measuring: a GC cycle triggered inside AllocsPerRun's
		// short window gets attributed to the step path. The retry keeps
		// a straggling cycle from failing the run; a genuine per-step
		// allocation shows up on every attempt.
		if allocs := zeroAllocStep(s, w); allocs != 0 {
			t.Fatalf("workers=%d: SoA step path allocates %v times per run", nw, allocs)
		}
		s.Close()
	}
}

// zeroAllocStep measures the steady-state allocation count of s.Step,
// insulating the measurement from unrelated GC activity.
func zeroAllocStep(s *smsolver.Solver, w []euler.State) float64 {
	var allocs float64
	for attempt := 0; attempt < 2; attempt++ {
		runtime.GC()
		allocs = testing.AllocsPerRun(5, func() { s.Step(w, nil) })
		if allocs == 0 {
			break
		}
	}
	return allocs
}
