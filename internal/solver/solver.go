// Package solver provides the steady-state driver used by the command-line
// tools and examples: it wraps the single-grid scheme and the multigrid
// cycles behind one Run loop with residual monitoring, convergence
// detection and iteration limits.
package solver

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"eul3d/internal/euler"
	"eul3d/internal/flops"
	"eul3d/internal/mesh"
	"eul3d/internal/meshio"
	"eul3d/internal/multigrid"
	"eul3d/internal/perf"
	"eul3d/internal/smsolver"
	"eul3d/internal/trace"
)

// Options controls a steady-state run.
type Options struct {
	MaxCycles int     // hard iteration limit (total, including resumed cycles)
	Tolerance float64 // stop when residual/initial falls below this (0 = run all cycles)
	LogEvery  int     // progress line period (0 = silent)
	Log       io.Writer

	// Checkpointing: every CheckpointEvery cycles an atomic, CRC-trailered
	// snapshot of the solution, cycle count and residual history is written
	// to CheckpointPath (both fields must be set to enable it). Mach and
	// AlphaDeg are recorded as metadata. A run restored from such a
	// snapshot (Restore) reproduces the uninterrupted residual history
	// bitwise.
	CheckpointEvery int
	CheckpointPath  string
	Mach            float64
	AlphaDeg        float64

	// Context, when non-nil, is checked before every cycle: once it is
	// cancelled (or its deadline passes) Run stops and returns the partial
	// Result with Cancelled set and a nil error. A nil Context reproduces
	// the uncancellable behaviour exactly.
	Context context.Context

	// Progress, when non-nil, is invoked after every completed cycle with
	// the cycle index and its residual norm. It runs on the solver
	// goroutine, so long callbacks slow the solve.
	Progress func(cycle int, norm float64)
}

// Result summarizes a run.
type Result struct {
	Cycles       int
	History      []float64 // residual norm per cycle
	InitialNorm  float64
	FinalNorm    float64
	Converged    bool
	Cancelled    bool // Options.Context was cancelled before the run finished
	Ordersof10   float64
	FineSolution []euler.State
}

// stepper abstracts one solver cycle.
type stepper interface {
	cycle() float64
	solution() []euler.State
	stats() perf.Stats
	initUniform()
}

// traceable is implemented by the steppers whose engines can attach a
// flight-recorder tracer (the pooled shared-memory ones).
type traceable interface {
	setTrace(tr *trace.Tracer)
}

func (s *smStepper) setTrace(tr *trace.Tracer)  { s.sm.SetTrace(tr) }
func (s *smgStepper) setTrace(tr *trace.Tracer) { s.mg.SetTrace(tr) }

type singleStepper struct {
	d   *euler.Disc
	w   []euler.State
	ws  *euler.StepWorkspace
	acc *perf.Accum
	fl  int64 // analytic flops of one time step
}

func (s *singleStepper) cycle() float64 {
	t := time.Now()
	norm := s.d.Step(s.w, nil, s.ws)
	s.acc.Add(0, time.Since(t), s.fl)
	return norm
}
func (s *singleStepper) solution() []euler.State { return s.w }
func (s *singleStepper) stats() perf.Stats       { return s.acc.Stats() }
func (s *singleStepper) initUniform()            { s.d.InitUniform(s.w) }

type mgStepper struct{ mg *multigrid.Solver }

func (s *mgStepper) cycle() float64          { return s.mg.Cycle() }
func (s *mgStepper) solution() []euler.State { return s.mg.Fine().W }
func (s *mgStepper) stats() perf.Stats       { return s.mg.Stats() }
func (s *mgStepper) initUniform()            { s.mg.InitUniform() }

type smStepper struct {
	sm *smsolver.Solver
	w  []euler.State
}

func (s *smStepper) cycle() float64          { return s.sm.Step(s.w, nil) }
func (s *smStepper) solution() []euler.State { return s.w }
func (s *smStepper) stats() perf.Stats       { return s.sm.Stats() }
func (s *smStepper) initUniform()            { s.sm.InitUniform(s.w) }

// NewSingleGrid builds a single-grid steady solver over m.
func NewSingleGrid(m *mesh.Mesh, p euler.Params) *Steady {
	d := euler.NewDisc(m, p)
	w := make([]euler.State, m.NV())
	d.InitUniform(w)
	fl := flops.Step(int64(m.NV()), int64(m.NE()), int64(len(m.BFaces)),
		len(p.Stages), euler.DissipStages, p.NSmooth)
	return &Steady{
		s:   &singleStepper{d: d, w: w, ws: euler.NewStepWorkspace(m.NV()), acc: perf.NewAccum("step"), fl: fl},
		cfl: p.CFL,
	}
}

// NewSharedMemory builds a single-grid steady solver over m driven by the
// persistent worker-pool engine with nworkers workers (0 = GOMAXPROCS).
// Results are bitwise identical to NewSingleGrid up to roundoff-free
// reassociation of the colored accumulation order; per-phase timings are
// available from Stats. Call Close when done to park the pool.
func NewSharedMemory(m *mesh.Mesh, p euler.Params, nworkers int) (*Steady, error) {
	sm, err := smsolver.New(m, p, nworkers)
	if err != nil {
		return nil, err
	}
	w := make([]euler.State, m.NV())
	sm.InitUniform(w)
	return &Steady{s: &smStepper{sm: sm, w: w}, cfl: p.CFL, close: sm.Close}, nil
}

type smgStepper struct{ mg *smsolver.Multigrid }

func (s *smgStepper) cycle() float64          { return s.mg.Cycle() }
func (s *smgStepper) solution() []euler.State { return s.mg.Fine().W }
func (s *smgStepper) stats() perf.Stats       { return s.mg.Stats() }
func (s *smgStepper) initUniform()            { s.mg.InitUniform() }

// NewSharedMemoryMultigrid builds a multigrid steady solver over the mesh
// sequence (finest first) with cycle index gamma, driven by the persistent
// worker-pool engine with nworkers workers (0 = GOMAXPROCS). Cycles are
// bitwise reproducible for any worker count; per-level timings are
// available from Stats. Call Close when done to park the pool.
func NewSharedMemoryMultigrid(meshes []*mesh.Mesh, p euler.Params, gamma, nworkers int) (*Steady, error) {
	mg, err := smsolver.NewMultigrid(meshes, p, gamma, nworkers)
	if err != nil {
		return nil, err
	}
	return &Steady{s: &smgStepper{mg: mg}, cfl: p.CFL, close: mg.Close}, nil
}

// NewMultigrid builds a multigrid steady solver over the mesh sequence
// (finest first) with cycle index gamma.
func NewMultigrid(meshes []*mesh.Mesh, p euler.Params, gamma int) (*Steady, error) {
	mg, err := multigrid.New(meshes, p, gamma)
	if err != nil {
		return nil, err
	}
	return &Steady{s: &mgStepper{mg: mg}, MG: mg, cfl: p.CFL}, nil
}

// Steady is a steady-state solver ready to Run.
type Steady struct {
	s  stepper
	MG *multigrid.Solver // non-nil for multigrid runs

	cfl        float64   // recorded in checkpoints
	startCycle int       // first cycle index Run will execute (set by Restore)
	prior      []float64 // residual history carried over from a checkpoint
	close      func()    // releases stepper resources (worker pool); may be nil
	closeOnce  sync.Once
}

// Stats returns the per-phase wall-clock and analytic-Mflops breakdown
// accumulated over every cycle run so far.
func (st *Steady) Stats() perf.Stats { return st.s.stats() }

// SetTrace attaches a flight-recorder tracer to the underlying engine and
// reports whether the stepper supports tracing (the pooled shared-memory
// engines do; the sequential steppers are single timelines the per-phase
// Stats already describe). Call before the first Run.
func (st *Steady) SetTrace(tr *trace.Tracer) bool {
	if t, ok := st.s.(traceable); ok && tr != nil {
		t.setTrace(tr)
		return true
	}
	return false
}

// Close releases any resources held by the underlying stepper (the
// shared-memory worker pool). It is idempotent — including under
// concurrent callers — and safe on solvers that hold no resources and
// after a Run that returned an error.
func (st *Steady) Close() {
	st.closeOnce.Do(func() {
		if st.close != nil {
			st.close()
			st.close = nil
		}
	})
}

// Reset returns the solver to its initial freestream state and clears any
// restored checkpoint, so a long-lived engine can serve a fresh run. The
// accumulated perf stats are deliberately kept (they describe the engine,
// not one run).
func (st *Steady) Reset() {
	st.s.initUniform()
	st.startCycle = 0
	st.prior = nil
}

// Restore warm-starts the solver from a checkpoint so that a subsequent
// Run continues exactly where the checkpointed run stopped: the solution is
// restored, cycle numbering resumes at ck.Cycle, and ck.History is
// prepended to the new run's history. Because the solver is deterministic,
// the resumed history and solution are bitwise identical to an
// uninterrupted run.
func (st *Steady) Restore(ck *meshio.Checkpoint) error {
	if len(ck.History) != ck.Cycle {
		return fmt.Errorf("solver: checkpoint at cycle %d has %d history entries", ck.Cycle, len(ck.History))
	}
	if err := st.SetInitial(ck.Sol); err != nil {
		return err
	}
	st.startCycle = ck.Cycle
	st.prior = append([]float64(nil), ck.History...)
	return nil
}

// SetInitial warm-starts the solver from a previously computed fine-grid
// solution (e.g. loaded with meshio.LoadSolution). The slice length must
// match the fine mesh.
func (st *Steady) SetInitial(w []euler.State) error {
	dst := st.s.solution()
	if len(w) != len(dst) {
		return fmt.Errorf("solver: initial solution has %d states for %d vertices", len(w), len(dst))
	}
	copy(dst, w)
	return nil
}

// Run iterates until convergence or the cycle limit and returns the
// result. After a Restore, iteration picks up at the checkpointed cycle
// and History includes the checkpointed prefix, so MaxCycles always means
// the total cycle count. The returned FineSolution aliases the solver's
// state.
func (st *Steady) Run(opt Options) (*Result, error) {
	if opt.MaxCycles <= 0 {
		return nil, fmt.Errorf("solver: MaxCycles must be positive")
	}
	res := &Result{History: append([]float64(nil), st.prior...)}
	if n := len(res.History); n > 0 {
		res.InitialNorm = res.History[0]
		res.FinalNorm = res.History[n-1]
		res.Cycles = n
	}
	for c := st.startCycle; c < opt.MaxCycles; c++ {
		if opt.Context != nil && opt.Context.Err() != nil {
			res.Cancelled = true
			break
		}
		norm := st.s.cycle()
		res.History = append(res.History, norm)
		if len(res.History) == 1 {
			res.InitialNorm = norm
		}
		res.FinalNorm = norm
		res.Cycles = c + 1
		if opt.Progress != nil {
			opt.Progress(c, norm)
		}
		if opt.LogEvery > 0 && opt.Log != nil && c%opt.LogEvery == 0 {
			fmt.Fprintf(opt.Log, "cycle %5d  residual %.3e\n", c, norm)
		}
		if opt.CheckpointEvery > 0 && opt.CheckpointPath != "" && (c+1)%opt.CheckpointEvery == 0 {
			if err := st.saveCheckpoint(&opt, c+1, res.History); err != nil {
				return nil, fmt.Errorf("solver: checkpoint at cycle %d: %w", c+1, err)
			}
		}
		if opt.Tolerance > 0 && res.InitialNorm > 0 && norm/res.InitialNorm < opt.Tolerance {
			res.Converged = true
			break
		}
	}
	if res.InitialNorm > 0 && res.FinalNorm > 0 {
		res.Ordersof10 = -math.Log10(res.FinalNorm / res.InitialNorm)
	}
	res.FineSolution = st.s.solution()
	return res, nil
}

// saveCheckpoint snapshots the live solution (copied — checkpoints must
// not alias mutating solver state) and writes it atomically.
func (st *Steady) saveCheckpoint(opt *Options, cycle int, history []float64) error {
	ck := &meshio.Checkpoint{
		Cycle:    cycle,
		Mach:     opt.Mach,
		AlphaDeg: opt.AlphaDeg,
		CFL:      st.cfl,
		History:  append([]float64(nil), history...),
		Sol:      append([]euler.State(nil), st.s.solution()...),
	}
	return meshio.SaveCheckpoint(opt.CheckpointPath, ck)
}
