// Package solver provides the steady-state driver used by the command-line
// tools and examples: it wraps the single-grid scheme and the multigrid
// cycles behind one Run loop with residual monitoring, convergence
// detection and iteration limits.
package solver

import (
	"fmt"
	"io"
	"math"

	"eul3d/internal/euler"
	"eul3d/internal/mesh"
	"eul3d/internal/multigrid"
)

// Options controls a steady-state run.
type Options struct {
	MaxCycles int     // hard iteration limit
	Tolerance float64 // stop when residual/initial falls below this (0 = run all cycles)
	LogEvery  int     // progress line period (0 = silent)
	Log       io.Writer
}

// Result summarizes a run.
type Result struct {
	Cycles       int
	History      []float64 // residual norm per cycle
	InitialNorm  float64
	FinalNorm    float64
	Converged    bool
	Ordersof10   float64
	FineSolution []euler.State
}

// stepper abstracts one solver cycle.
type stepper interface {
	cycle() float64
	solution() []euler.State
}

type singleStepper struct {
	d  *euler.Disc
	w  []euler.State
	ws *euler.StepWorkspace
}

func (s *singleStepper) cycle() float64          { return s.d.Step(s.w, nil, s.ws) }
func (s *singleStepper) solution() []euler.State { return s.w }

type mgStepper struct{ mg *multigrid.Solver }

func (s *mgStepper) cycle() float64          { return s.mg.Cycle() }
func (s *mgStepper) solution() []euler.State { return s.mg.Fine().W }

// NewSingleGrid builds a single-grid steady solver over m.
func NewSingleGrid(m *mesh.Mesh, p euler.Params) *Steady {
	d := euler.NewDisc(m, p)
	w := make([]euler.State, m.NV())
	d.InitUniform(w)
	return &Steady{s: &singleStepper{d: d, w: w, ws: euler.NewStepWorkspace(m.NV())}}
}

// NewMultigrid builds a multigrid steady solver over the mesh sequence
// (finest first) with cycle index gamma.
func NewMultigrid(meshes []*mesh.Mesh, p euler.Params, gamma int) (*Steady, error) {
	mg, err := multigrid.New(meshes, p, gamma)
	if err != nil {
		return nil, err
	}
	return &Steady{s: &mgStepper{mg: mg}, MG: mg}, nil
}

// Steady is a steady-state solver ready to Run.
type Steady struct {
	s  stepper
	MG *multigrid.Solver // non-nil for multigrid runs
}

// SetInitial warm-starts the solver from a previously computed fine-grid
// solution (e.g. loaded with meshio.LoadSolution). The slice length must
// match the fine mesh.
func (st *Steady) SetInitial(w []euler.State) error {
	dst := st.s.solution()
	if len(w) != len(dst) {
		return fmt.Errorf("solver: initial solution has %d states for %d vertices", len(w), len(dst))
	}
	copy(dst, w)
	return nil
}

// Run iterates until convergence or the cycle limit and returns the
// result. The returned FineSolution aliases the solver's state.
func (st *Steady) Run(opt Options) (*Result, error) {
	if opt.MaxCycles <= 0 {
		return nil, fmt.Errorf("solver: MaxCycles must be positive")
	}
	res := &Result{}
	for c := 0; c < opt.MaxCycles; c++ {
		norm := st.s.cycle()
		res.History = append(res.History, norm)
		if c == 0 {
			res.InitialNorm = norm
		}
		res.FinalNorm = norm
		res.Cycles = c + 1
		if opt.LogEvery > 0 && opt.Log != nil && c%opt.LogEvery == 0 {
			fmt.Fprintf(opt.Log, "cycle %5d  residual %.3e\n", c, norm)
		}
		if opt.Tolerance > 0 && res.InitialNorm > 0 && norm/res.InitialNorm < opt.Tolerance {
			res.Converged = true
			break
		}
	}
	if res.InitialNorm > 0 && res.FinalNorm > 0 {
		res.Ordersof10 = -math.Log10(res.FinalNorm / res.InitialNorm)
	}
	res.FineSolution = st.s.solution()
	return res, nil
}
