// Package partition implements the mesh partitioning strategies of the
// paper's distributed-memory port: recursive spectral bisection (the
// Pothen–Simon–Liou method the paper uses, built on a Lanczos eigensolver
// for the Fiedler vector of the graph Laplacian), plus the cheaper inertial
// and BFS-greedy baselines, and quality metrics (edge cut, imbalance,
// boundary fraction) that determine communication volume on the Delta.
package partition

import (
	"fmt"
	"math"
	"math/rand"
)

// subgraph is a vertex-induced subgraph with local indexing, used by the
// recursive bisection.
type subgraph struct {
	verts []int32 // global ids, local index -> global
	ptr   []int32
	adj   []int32 // local indices
}

// localDegree returns the degree of local vertex v within the subgraph.
func (s *subgraph) degree(v int32) int32 { return s.ptr[v+1] - s.ptr[v] }

// lapMatVec computes y = L x with L = D - A of the subgraph.
func (s *subgraph) lapMatVec(x, y []float64) {
	for v := range y {
		d := float64(s.degree(int32(v)))
		sum := 0.0
		for _, w := range s.adj[s.ptr[v]:s.ptr[v+1]] {
			sum += x[w]
		}
		y[v] = d*x[v] - sum
	}
}

// fiedler returns an approximation to the eigenvector of the second-
// smallest eigenvalue of the subgraph Laplacian, computed by Lanczos with
// full reorthogonalization (and deflation of the constant vector). rng
// seeds the starting vector so results are deterministic.
func (s *subgraph) fiedler(rng *rand.Rand, maxIter int) ([]float64, error) {
	n := len(s.verts)
	if n < 2 {
		return nil, fmt.Errorf("partition: fiedler on %d vertices", n)
	}
	m := maxIter
	if m > n-1 {
		m = n - 1
	}
	if m < 1 {
		m = 1
	}

	ones := 1 / math.Sqrt(float64(n))
	// Lanczos basis, alpha/beta of the tridiagonal.
	V := make([][]float64, 0, m)
	alpha := make([]float64, 0, m)
	beta := make([]float64, 0, m)

	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	orthoOnes := func(x []float64) {
		dot := 0.0
		for i := range x {
			dot += x[i] * ones
		}
		for i := range x {
			x[i] -= dot * ones
		}
	}
	normalize := func(x []float64) float64 {
		nrm := 0.0
		for i := range x {
			nrm += x[i] * x[i]
		}
		nrm = math.Sqrt(nrm)
		if nrm > 0 {
			inv := 1 / nrm
			for i := range x {
				x[i] *= inv
			}
		}
		return nrm
	}
	orthoOnes(v)
	if normalize(v) == 0 {
		return nil, fmt.Errorf("partition: degenerate Lanczos start")
	}

	w := make([]float64, n)
	for it := 0; it < m; it++ {
		V = append(V, append([]float64(nil), v...))
		s.lapMatVec(v, w)
		a := 0.0
		for i := range w {
			a += w[i] * v[i]
		}
		alpha = append(alpha, a)
		// w = w - a*v - beta*v_prev, then full reorthogonalization.
		for i := range w {
			w[i] -= a * v[i]
		}
		if it > 0 {
			b := beta[it-1]
			prev := V[it-1]
			for i := range w {
				w[i] -= b * prev[i]
			}
		}
		orthoOnes(w)
		for _, u := range V {
			dot := 0.0
			for i := range w {
				dot += w[i] * u[i]
			}
			for i := range w {
				w[i] -= dot * u[i]
			}
		}
		b := normalize(w)
		if b < 1e-12 {
			break
		}
		beta = append(beta, b)
		copy(v, w)
	}

	k := len(alpha)
	// Solve the k x k tridiagonal eigenproblem; take the eigenvector of the
	// smallest eigenvalue (the constant mode was deflated, so this Ritz
	// pair approximates the Fiedler pair).
	evals, evecs := tridiagEigen(append([]float64(nil), alpha...), append([]float64(nil), beta[:k-1]...))
	best := 0
	for i := 1; i < k; i++ {
		if evals[i] < evals[best] {
			best = i
		}
	}
	out := make([]float64, n)
	for j := 0; j < k; j++ {
		c := evecs[j][best]
		for i := range out {
			out[i] += c * V[j][i]
		}
	}
	return out, nil
}

// tridiagEigen computes all eigenvalues and eigenvectors of the symmetric
// tridiagonal matrix with diagonal d (length n) and off-diagonal e (length
// n-1) using the implicit QL algorithm with Wilkinson shifts (the classical
// tql2 routine). It returns the eigenvalues and the matrix of eigenvectors
// (evec[i][j] = component i of eigenvector j).
func tridiagEigen(d, e []float64) ([]float64, [][]float64) {
	n := len(d)
	z := make([][]float64, n)
	for i := range z {
		z[i] = make([]float64, n)
		z[i][i] = 1
	}
	if n == 1 {
		return d, z
	}
	e = append(e, 0)

	for l := 0; l < n; l++ {
		iter := 0
		for {
			mIdx := l
			for ; mIdx < n-1; mIdx++ {
				dd := math.Abs(d[mIdx]) + math.Abs(d[mIdx+1])
				if math.Abs(e[mIdx]) <= 1e-15*dd {
					break
				}
			}
			if mIdx == l {
				break
			}
			iter++
			if iter > 50 {
				break // settle for what we have
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			sg := r
			if g < 0 {
				sg = -r
			}
			g = d[mIdx] - d[l] + e[l]/(g+sg)
			s, c := 1.0, 1.0
			p := 0.0
			for i := mIdx - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[mIdx] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				for k := 0; k < n; k++ {
					f := z[k][i+1]
					z[k][i+1] = s*z[k][i] + c*f
					z[k][i] = c*z[k][i] - s*f
				}
			}
			if r == 0 && mIdx-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[mIdx] = 0
		}
	}
	return d, z
}
