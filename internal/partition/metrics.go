package partition

import (
	"fmt"
	"math"
)

// Quality summarizes how good a partition is for distributed execution:
// the edge cut drives communication volume, the imbalance drives idle time,
// and the boundary fraction is the surface-to-volume ratio the paper's
// partitioner minimizes.
type Quality struct {
	NParts        int
	EdgeCut       int     // edges with endpoints in different parts
	CutFraction   float64 // EdgeCut / total edges
	MaxPartSize   int
	MinPartSize   int
	Imbalance     float64 // MaxPartSize / ideal - 1
	BoundaryVerts int     // vertices with a neighbour in another part
	BoundaryFrac  float64 // BoundaryVerts / n
}

// Evaluate computes partition quality for a vertex partition over the edge
// list of the mesh graph.
func Evaluate(part []int32, edges [][2]int32, nparts int) Quality {
	q := Quality{NParts: nparts, MinPartSize: math.MaxInt}
	sizes := make([]int, nparts)
	for _, p := range part {
		sizes[p]++
	}
	for _, s := range sizes {
		if s > q.MaxPartSize {
			q.MaxPartSize = s
		}
		if s < q.MinPartSize {
			q.MinPartSize = s
		}
	}
	boundary := make([]bool, len(part))
	for _, e := range edges {
		if part[e[0]] != part[e[1]] {
			q.EdgeCut++
			boundary[e[0]] = true
			boundary[e[1]] = true
		}
	}
	for _, b := range boundary {
		if b {
			q.BoundaryVerts++
		}
	}
	if len(edges) > 0 {
		q.CutFraction = float64(q.EdgeCut) / float64(len(edges))
	}
	if len(part) > 0 {
		ideal := float64(len(part)) / float64(nparts)
		q.Imbalance = float64(q.MaxPartSize)/ideal - 1
		q.BoundaryFrac = float64(q.BoundaryVerts) / float64(len(part))
	}
	return q
}

// String formats the quality report on one line.
func (q Quality) String() string {
	return fmt.Sprintf("parts=%d cut=%d (%.1f%%) sizes=[%d,%d] imbalance=%.1f%% boundary=%.1f%%",
		q.NParts, q.EdgeCut, 100*q.CutFraction, q.MinPartSize, q.MaxPartSize,
		100*q.Imbalance, 100*q.BoundaryFrac)
}
