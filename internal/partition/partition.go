package partition

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"eul3d/internal/geom"
	"eul3d/internal/graph"
)

// Method selects a partitioning strategy.
type Method int

const (
	// Spectral is recursive spectral bisection (the paper's choice): high
	// quality, cost comparable to a full flow solution.
	Spectral Method = iota
	// Inertial is recursive coordinate bisection along the principal axis:
	// much cheaper, somewhat larger cuts.
	Inertial
	// BFSGreedy grows parts breadth-first from peripheral seeds: cheapest,
	// worst cuts.
	BFSGreedy
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Spectral:
		return "spectral"
	case Inertial:
		return "inertial"
	case BFSGreedy:
		return "bfs-greedy"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Partition assigns each of the graph's vertices to one of nparts parts.
// coords are required by Inertial and ignored by the others (may be nil).
// The algorithms are deterministic for a fixed seed.
func Partition(g *graph.CSR, coords []geom.Vec3, nparts int, method Method, seed int64) ([]int32, error) {
	n := g.N()
	if nparts < 1 {
		return nil, fmt.Errorf("partition: nparts must be >= 1, got %d", nparts)
	}
	if nparts > n {
		return nil, fmt.Errorf("partition: nparts %d exceeds vertex count %d", nparts, n)
	}
	if method == Inertial && coords == nil {
		return nil, fmt.Errorf("partition: inertial bisection requires coordinates")
	}
	part := make([]int32, n)
	if nparts == 1 {
		return part, nil
	}
	if method == BFSGreedy {
		return bfsGreedy(g, nparts)
	}

	rng := rand.New(rand.NewSource(seed))
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	var recurse func(verts []int32, first, count int) error
	recurse = func(verts []int32, first, count int) error {
		if count == 1 {
			for _, v := range verts {
				part[v] = int32(first)
			}
			return nil
		}
		k1 := count / 2
		frac := float64(k1) / float64(count)
		var left, right []int32
		var err error
		switch method {
		case Spectral:
			left, right, err = spectralSplit(g, verts, frac, rng)
		case Inertial:
			left, right, err = inertialSplit(coords, verts, frac)
		default:
			return fmt.Errorf("partition: unknown method %v", method)
		}
		if err != nil {
			return err
		}
		if err := recurse(left, first, k1); err != nil {
			return err
		}
		return recurse(right, first+k1, count-k1)
	}
	if err := recurse(all, 0, nparts); err != nil {
		return nil, err
	}
	return part, nil
}

// induced builds the local-index subgraph of verts.
func induced(g *graph.CSR, verts []int32) *subgraph {
	local := make(map[int32]int32, len(verts))
	for li, v := range verts {
		local[v] = int32(li)
	}
	s := &subgraph{verts: verts, ptr: make([]int32, len(verts)+1)}
	for li, v := range verts {
		for _, w := range g.Neighbors(v) {
			if _, ok := local[w]; ok {
				s.ptr[li+1]++
			}
		}
	}
	for i := 0; i < len(verts); i++ {
		s.ptr[i+1] += s.ptr[i]
	}
	s.adj = make([]int32, s.ptr[len(verts)])
	fill := make([]int32, len(verts))
	for li, v := range verts {
		for _, w := range g.Neighbors(v) {
			if lw, ok := local[w]; ok {
				s.adj[s.ptr[li]+fill[li]] = lw
				fill[li]++
			}
		}
	}
	return s
}

// splitByKey partitions verts at the weighted median of key, putting
// round(frac*len) vertices with the smallest keys on the left.
func splitByKey(verts []int32, key []float64, frac float64) (left, right []int32) {
	order := make([]int, len(verts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return key[order[a]] < key[order[b]] })
	nl := int(frac*float64(len(verts)) + 0.5)
	if nl < 1 {
		nl = 1
	}
	if nl > len(verts)-1 {
		nl = len(verts) - 1
	}
	left = make([]int32, 0, nl)
	right = make([]int32, 0, len(verts)-nl)
	for i, o := range order {
		if i < nl {
			left = append(left, verts[o])
		} else {
			right = append(right, verts[o])
		}
	}
	return left, right
}

// spectralSplit bisects verts by the Fiedler vector of the induced
// subgraph. Disconnected subgraphs fall back to a BFS ordering split (the
// Fiedler vector of a disconnected graph only separates components).
func spectralSplit(g *graph.CSR, verts []int32, frac float64, rng *rand.Rand) (left, right []int32, err error) {
	s := induced(g, verts)
	if len(verts) <= 3 {
		return splitIdentity(verts, frac)
	}
	if nc := countComponents(s); nc > 1 {
		key := bfsKey(s)
		l, r := splitByKey(verts, key, frac)
		return l, r, nil
	}
	f, err := s.fiedler(rng, 60)
	if err != nil {
		return nil, nil, err
	}
	l, r := splitByKey(verts, f, frac)
	return l, r, nil
}

func splitIdentity(verts []int32, frac float64) (left, right []int32, err error) {
	key := make([]float64, len(verts))
	for i := range key {
		key[i] = float64(i)
	}
	l, r := splitByKey(verts, key, frac)
	return l, r, nil
}

// countComponents counts connected components of a subgraph.
func countComponents(s *subgraph) int {
	n := len(s.verts)
	seen := make([]bool, n)
	nc := 0
	var stack []int32
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		nc++
		seen[v] = true
		stack = append(stack[:0], int32(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range s.adj[s.ptr[u]:s.ptr[u+1]] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return nc
}

// bfsKey returns BFS visit order as a split key (component by component).
func bfsKey(s *subgraph) []float64 {
	n := len(s.verts)
	key := make([]float64, n)
	seen := make([]bool, n)
	order := 0
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		seen[v] = true
		queue = append(queue[:0], int32(v))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			key[u] = float64(order)
			order++
			for _, w := range s.adj[s.ptr[u]:s.ptr[u+1]] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return key
}

// inertialSplit bisects verts at the median projection onto the principal
// axis of their coordinates.
func inertialSplit(coords []geom.Vec3, verts []int32, frac float64) (left, right []int32, err error) {
	var c geom.Vec3
	for _, v := range verts {
		c = c.Add(coords[v])
	}
	c = c.Scale(1 / float64(len(verts)))
	// 3x3 covariance.
	var m [3][3]float64
	for _, v := range verts {
		d := coords[v].Sub(c)
		x := [3]float64{d.X, d.Y, d.Z}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += x[i] * x[j]
			}
		}
	}
	// Principal axis by power iteration.
	axis := [3]float64{1, 0.5, 0.25}
	for it := 0; it < 50; it++ {
		var nx [3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				nx[i] += m[i][j] * axis[j]
			}
		}
		nrm := 0.0
		for i := 0; i < 3; i++ {
			nrm += nx[i] * nx[i]
		}
		if nrm == 0 {
			break
		}
		inv := 1 / math.Sqrt(nrm)
		for i := 0; i < 3; i++ {
			axis[i] = nx[i] * inv
		}
	}
	key := make([]float64, len(verts))
	for i, v := range verts {
		d := coords[v].Sub(c)
		key[i] = d.X*axis[0] + d.Y*axis[1] + d.Z*axis[2]
	}
	l, r := splitByKey(verts, key, frac)
	return l, r, nil
}

// bfsGreedy grows nparts contiguous parts of near-equal size by repeated
// BFS from a peripheral unassigned vertex.
func bfsGreedy(g *graph.CSR, nparts int) ([]int32, error) {
	n := g.N()
	part := make([]int32, n)
	for i := range part {
		part[i] = -1
	}
	target := (n + nparts - 1) / nparts
	assigned := 0
	for p := 0; p < nparts; p++ {
		// Seed: an unassigned vertex with the fewest unassigned neighbours
		// (peripheral in the remaining graph).
		seed := int32(-1)
		best := int32(1 << 30)
		for v := int32(0); int(v) < n; v++ {
			if part[v] >= 0 {
				continue
			}
			free := int32(0)
			for _, w := range g.Neighbors(v) {
				if part[w] < 0 {
					free++
				}
			}
			if free < best {
				best, seed = free, v
			}
		}
		if seed < 0 {
			break
		}
		size := target
		if rem := n - assigned; p == nparts-1 || rem < size {
			size = n - assigned
			if p < nparts-1 {
				size = target
			}
		}
		queue := []int32{seed}
		part[seed] = int32(p)
		count := 1
		for head := 0; head < len(queue) && count < size; head++ {
			for _, w := range g.Neighbors(queue[head]) {
				if part[w] < 0 {
					part[w] = int32(p)
					queue = append(queue, w)
					count++
					if count == size {
						break
					}
				}
			}
		}
		// The BFS may exhaust its component before reaching the target
		// size; sweep for strays.
		for v := int32(0); int(v) < n && count < size; v++ {
			if part[v] < 0 {
				part[v] = int32(p)
				count++
			}
		}
		assigned += count
	}
	// Any leftovers to the last part.
	for v := range part {
		if part[v] < 0 {
			part[v] = int32(nparts - 1)
		}
	}
	return part, nil
}
