package partition

import (
	"math"
	"math/rand"
	"testing"

	"eul3d/internal/graph"
	"eul3d/internal/meshgen"
)

func meshGraph(t *testing.T, nx, ny, nz int) (*graph.CSR, [][2]int32, []int, interface{}) {
	t.Helper()
	m, err := meshgen.Channel(meshgen.DefaultChannel(nx, ny, nz, 7))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	return g, m.Edges, nil, nil
}

func checkPartition(t *testing.T, part []int32, nparts int) {
	t.Helper()
	sizes := make([]int, nparts)
	for v, p := range part {
		if p < 0 || int(p) >= nparts {
			t.Fatalf("vertex %d: part %d out of range", v, p)
		}
		sizes[p]++
	}
	for p, s := range sizes {
		if s == 0 {
			t.Fatalf("part %d is empty", p)
		}
	}
}

func TestPartitionMethods(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(10, 8, 6, 7))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{Spectral, Inertial, BFSGreedy} {
		for _, np := range []int{2, 4, 7, 8} {
			part, err := Partition(g, m.X, np, method, 1)
			if err != nil {
				t.Fatalf("%v/%d: %v", method, np, err)
			}
			checkPartition(t, part, np)
			q := Evaluate(part, m.Edges, np)
			if q.Imbalance > 0.05 {
				t.Errorf("%v/%d: imbalance %.3f too high", method, np, q.Imbalance)
			}
			t.Logf("%v np=%d: %v", method, np, q)
		}
	}
}

func TestSpectralBeatsGreedyOnCut(t *testing.T) {
	m, err := meshgen.Channel(meshgen.DefaultChannel(12, 8, 6, 7))
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Partition(g, m.X, 8, Spectral, 1)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Partition(g, nil, 8, BFSGreedy, 1)
	if err != nil {
		t.Fatal(err)
	}
	qs := Evaluate(sp, m.Edges, 8)
	qg := Evaluate(gr, m.Edges, 8)
	t.Logf("spectral: %v", qs)
	t.Logf("greedy:   %v", qg)
	if qs.EdgeCut >= qg.EdgeCut {
		t.Errorf("spectral cut %d not better than greedy %d", qs.EdgeCut, qg.EdgeCut)
	}
}

func TestSpectralBisectionOnBar(t *testing.T) {
	// A long bar must be cut across its short dimension; the minimal cut
	// for a 16x2x2 vertex bar is about 2*3*3=9..12 edges under any sane
	// Fiedler split.
	spec := meshgen.DefaultChannel(15, 2, 2, 3)
	spec.Jitter = 0
	spec.BumpHeight = 0
	m, err := meshgen.Channel(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(m.NV(), m.Edges)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Partition(g, m.X, 2, Spectral, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(part, m.Edges, 2)
	// A straight cross-section cut of this bar severs well under 10% of
	// edges; an axial cut would sever ~40%.
	if q.CutFraction > 0.12 {
		t.Errorf("spectral cut fraction %.3f: did not cut across the bar", q.CutFraction)
	}
}

func TestFiedlerMatchesPathEigenvector(t *testing.T) {
	// The Fiedler vector of a path is cos(pi*(i+1/2)/n): monotone along
	// the path. Check monotonicity (up to global sign).
	n := 24
	edges := make([][2]int32, n-1)
	for i := range edges {
		edges[i] = [2]int32{int32(i), int32(i + 1)}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	s := induced(g, verts)
	f, err := s.fiedler(rand.New(rand.NewSource(2)), 40)
	if err != nil {
		t.Fatal(err)
	}
	sign := 1.0
	if f[0] > f[n-1] {
		sign = -1
	}
	for i := 0; i < n-1; i++ {
		if sign*f[i] > sign*f[i+1]+1e-8 {
			t.Fatalf("fiedler not monotone on path at %d: %v", i, f)
		}
	}
}

func TestTridiagEigenKnown(t *testing.T) {
	// Eigenvalues of tridiag(-1, 2, -1) of size n are 2-2cos(k*pi/(n+1)).
	n := 8
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	evals, evecs := tridiagEigen(d, e)
	want := make([]float64, n)
	for k := 1; k <= n; k++ {
		want[k-1] = 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
	}
	// Sort both.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if evals[j] < evals[i] {
				evals[i], evals[j] = evals[j], evals[i]
			}
			if want[j] < want[i] {
				want[i], want[j] = want[j], want[i]
			}
		}
	}
	for i := range evals {
		if math.Abs(evals[i]-want[i]) > 1e-9 {
			t.Errorf("eig %d = %v, want %v", i, evals[i], want[i])
		}
	}
	// Eigenvector columns must be unit length.
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += evecs[i][j] * evecs[i][j]
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("eigenvector %d norm^2 = %v", j, s)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	g, _, _, _ := meshGraph(t, 4, 3, 3)
	if _, err := Partition(g, nil, 0, Spectral, 1); err == nil {
		t.Error("accepted nparts=0")
	}
	if _, err := Partition(g, nil, g.N()+1, Spectral, 1); err == nil {
		t.Error("accepted nparts > n")
	}
	if _, err := Partition(g, nil, 2, Inertial, 1); err == nil {
		t.Error("inertial accepted nil coords")
	}
	part, err := Partition(g, nil, 1, Spectral, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("nparts=1 should assign everything to part 0")
		}
	}
}

func TestPartitionDisconnected(t *testing.T) {
	// Two disjoint triangles: spectral must fall back gracefully.
	edges := [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}
	g, err := graph.FromEdges(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Partition(g, nil, 2, Spectral, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, part, 2)
	q := Evaluate(part, edges, 2)
	if q.EdgeCut != 0 {
		t.Errorf("disconnected graph split with cut %d, want 0", q.EdgeCut)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g, edges, _, _ := meshGraph(t, 8, 6, 4)
	a, err := Partition(g, nil, 8, Spectral, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, nil, 8, Spectral, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
	_ = edges
}

func TestMethodString(t *testing.T) {
	if Spectral.String() != "spectral" || Inertial.String() != "inertial" ||
		BFSGreedy.String() != "bfs-greedy" {
		t.Error("method names")
	}
	if Method(9).String() == "" {
		t.Error("unknown method string empty")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	q := Evaluate(nil, nil, 1)
	if q.EdgeCut != 0 || q.BoundaryVerts != 0 {
		t.Errorf("empty quality: %+v", q)
	}
}
