package tables

import (
	"fmt"
	"math"
	"strings"
)

// TimeToSolution reproduces the paper's headline comparison: the wall-clock
// time each solution strategy needs to converge the residual by `orders`
// orders of magnitude, on the 16-CPU C90 and on the 512-node Delta. The
// paper quotes 242 s (W), ~360 s (V) and ~1 hour (single grid) for the C90,
// and 843 s (W, estimated), 1083 s (V) and ~1 hour (single) for the Delta.
type TimeToSolution struct {
	Orders float64
	Rows   []TimeToSolutionRow
}

// TimeToSolutionRow is one strategy's result.
type TimeToSolutionRow struct {
	Strategy     Strategy
	Cycles       float64 // cycles to reach the target (extrapolated if beyond the run)
	Extrapolated bool
	C90Seconds   float64 // on 16 CPUs
	DeltaSeconds float64 // on the largest node count of the Delta table
}

// CyclesToOrders returns the (possibly extrapolated) cycle count at which
// the series first drops `orders` below its initial residual. When the run
// ends early, the tail's log-linear slope extends it — the same estimate
// the paper makes for its "approximately 1 hour" single-grid numbers.
func (r *Figure2Result) CyclesToOrders(name string, orders float64) (cycles float64, extrapolated bool) {
	series := r.Series[name]
	if len(series) == 0 {
		return math.NaN(), false
	}
	target := math.Pow(10, -orders)
	for _, pt := range series {
		if pt.Residual <= target {
			return float64(pt.Cycle), false
		}
	}
	// Log-linear extrapolation from the last half of the run.
	half := series[len(series)/2:]
	if len(half) < 2 {
		half = series
	}
	first, last := half[0], half[len(half)-1]
	if last.Residual <= 0 || first.Residual <= 0 || last.Residual >= first.Residual {
		return math.Inf(1), true
	}
	slope := (math.Log10(last.Residual) - math.Log10(first.Residual)) /
		float64(last.Cycle-first.Cycle) // orders per cycle (< 0)
	need := (-orders - math.Log10(last.Residual)) / slope
	return float64(last.Cycle) + need, true
}

// ComputeTimeToSolution combines a convergence study with the per-cycle
// machine times of the C90 and Delta tables. The cycle counts come from the
// fig2 meshes; the seconds-per-cycle from the tables' meshes (scale
// documented by the caller).
func ComputeTimeToSolution(fig2 *Figure2Result, orders float64,
	t1 map[Strategy]*C90Table, t2 map[Strategy]*DeltaTable) *TimeToSolution {
	out := &TimeToSolution{Orders: orders}
	for _, s := range []Strategy{SingleGrid, VCycle, WCycle} {
		cycles, ex := fig2.CyclesToOrders(s.String(), orders)
		row := TimeToSolutionRow{Strategy: s, Cycles: cycles, Extrapolated: ex}
		if tab := t1[s]; tab != nil {
			perCycle := tab.Rows[len(tab.Rows)-1].WallS / float64(tab.Config.Cycles)
			row.C90Seconds = perCycle * cycles
		}
		if tab := t2[s]; tab != nil {
			perCycle := tab.Rows[len(tab.Rows)-1].TotalS / float64(tab.Config.Cycles)
			row.DeltaSeconds = perCycle * cycles
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// String renders the comparison with the paper's reference values.
func (t *TimeToSolution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Time to reduce the residual by %.0f orders of magnitude\n", t.Orders)
	fmt.Fprintf(&b, "(paper: C90 16 CPUs: ~3600 s single / ~360 s V / 242 s W;\n")
	fmt.Fprintf(&b, "        Delta 512:   ~3600 s single / 1083 s V / 843 s W)\n\n")
	fmt.Fprintf(&b, "%-20s %10s %14s %14s\n", "strategy", "cycles", "C90-16 [s]", "Delta-max [s]")
	for _, r := range t.Rows {
		mark := ""
		if r.Extrapolated {
			mark = " (extrapolated)"
		}
		fmt.Fprintf(&b, "%-20s %10.0f %14.0f %14.0f%s\n",
			r.Strategy, r.Cycles, r.C90Seconds, r.DeltaSeconds, mark)
	}
	return b.String()
}
