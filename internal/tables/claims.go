package tables

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"eul3d/internal/euler"
	"eul3d/internal/graph"
	"eul3d/internal/multigrid"
	"eul3d/internal/parti"
	"eul3d/internal/partition"
	"eul3d/internal/reorder"
)

// Claims holds the measured values of the paper's in-text quantitative
// claims (the ones not printed in any table).
type Claims struct {
	// Section 2.3: "a W-multigrid cycle requires approximately 90% more
	// CPU time than a single grid cycle, while the multigrid V-cycle
	// requires 75% more" (sequential).
	VCycleExtraWork float64 // measured fraction, paper ~0.75
	WCycleExtraWork float64 // measured fraction, paper ~0.90

	// Section 2.3: "roughly a 33% increase in memory over the single grid
	// scheme".
	MemoryOverhead float64

	// Section 4.2: "These optimizations alone improved the single node
	// computational rate by a factor of two" — measured as cache-model hit
	// rates before/after node renumbering + edge reordering.
	HitRateScrambled float64
	HitRateReordered float64

	// Section 4.3: incremental schedules "significantly reduce the volume
	// of communication" — ghost values a second schedule would re-fetch
	// per exchange, eliminated by the hash-table dedup.
	IncrementalReused int

	// Sections 2.4/4.1: "the expense of the partitioning operation has
	// been found to be comparable to the cost of a sequential flow
	// solution" — both measured in this process's wall clock.
	PartitionSeconds   float64
	FlowSolveSeconds   float64 // cfg.Cycles single-grid cycles
	PartitionOverSolve float64
}

// ClaimsConfig is the default workload for the derived-claims experiment:
// moderate, since it runs real solver cycles and a real 64-way spectral
// partition.
func ClaimsConfig() Config {
	c := DefaultConfig()
	c.NX, c.NY, c.NZ = 32, 16, 12
	c.Cycles = 100
	return c
}

// MeasureClaims runs the sub-experiments behind the paper's in-text
// claims.
func MeasureClaims(cfg Config, nparts int) (*Claims, error) {
	out := &Claims{}
	p := euler.DefaultParams(cfg.Mach, cfg.AlphaDeg)

	// --- Per-cycle work of the three strategies, measured in wall clock
	// on this machine over real cycles.
	meshesW, err := cfg.Meshes(WCycle)
	if err != nil {
		return nil, err
	}
	timeCycles := func(run func()) float64 {
		start := time.Now()
		run()
		return time.Since(start).Seconds()
	}
	const reps = 10
	single := euler.NewDisc(meshesW[0], p)
	wsg := make([]euler.State, meshesW[0].NV())
	single.InitUniform(wsg)
	ws := euler.NewStepWorkspace(len(wsg))
	single.Step(wsg, nil, ws) // warm
	tSingle := timeCycles(func() {
		for i := 0; i < reps; i++ {
			single.Step(wsg, nil, ws)
		}
	})
	mgv, err := multigrid.New(meshesW, p, 1)
	if err != nil {
		return nil, err
	}
	mgv.Cycle()
	tV := timeCycles(func() {
		for i := 0; i < reps; i++ {
			mgv.Cycle()
		}
	})
	mgw, err := multigrid.New(meshesW, p, 2)
	if err != nil {
		return nil, err
	}
	mgw.Cycle()
	tW := timeCycles(func() {
		for i := 0; i < reps; i++ {
			mgw.Cycle()
		}
	})
	out.VCycleExtraWork = tV/tSingle - 1
	out.WCycleExtraWork = tW/tSingle - 1
	out.MemoryOverhead = mgw.MemoryOverhead()

	// --- Reordering claim: cache-model hit rates on the fine mesh.
	fine := meshesW[0]
	rng := rand.New(rand.NewSource(cfg.Seed))
	shuf := make([]int32, fine.NV())
	for i := range shuf {
		shuf[i] = int32(i)
	}
	rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
	scrambled := reorder.RenumberEdges(fine.Edges, shuf)
	edgeShuffle := make([]int32, len(scrambled))
	for i := range edgeShuffle {
		edgeShuffle[i] = int32(i)
	}
	rng.Shuffle(len(edgeShuffle), func(i, j int) {
		edgeShuffle[i], edgeShuffle[j] = edgeShuffle[j], edgeShuffle[i]
	})
	out.HitRateScrambled = reorder.DeltaCache.HitRate(scrambled, edgeShuffle)
	gs, err := graph.FromEdges(fine.NV(), scrambled)
	if err != nil {
		return nil, err
	}
	perm := reorder.CuthillMcKee(gs, true)
	renum := reorder.RenumberEdges(scrambled, reorder.InversePerm(perm))
	out.HitRateReordered = reorder.DeltaCache.HitRate(renum, reorder.SortEdgesByVertex(renum))

	// --- Incremental schedule claim: the dissipation loops reference the
	// same off-processor vertices as the flux loops; the second schedule
	// re-fetches nothing.
	g, err := graph.FromEdges(fine.NV(), fine.Edges)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	part, err := partition.Partition(g, fine.X, nparts, partition.Spectral, cfg.Seed)
	if err != nil {
		return nil, err
	}
	out.PartitionSeconds = time.Since(start).Seconds()
	dist, err := parti.NewDist(part, nparts)
	if err != nil {
		return nil, err
	}
	space := parti.NewGhostSpace(dist)
	refs := make([][]int32, nparts)
	for _, e := range fine.Edges {
		pr := part[e[0]]
		refs[pr] = append(refs[pr], e[0], e[1])
	}
	parti.BuildSchedule(space, refs)
	_, reused := parti.BuildIncremental(space, refs)
	out.IncrementalReused = reused

	// --- Partitioning vs flow solution, both in this process's seconds.
	out.FlowSolveSeconds = tSingle / reps * float64(cfg.Cycles)
	out.PartitionOverSolve = out.PartitionSeconds / out.FlowSolveSeconds
	return out, nil
}

// String formats the claims report with the paper's reference values.
func (c *Claims) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Derived claims (measured vs paper):\n")
	fmt.Fprintf(&b, "  V-cycle extra work per cycle:   %+.0f%%   (paper: ~+75%%)\n", 100*c.VCycleExtraWork)
	fmt.Fprintf(&b, "  W-cycle extra work per cycle:   %+.0f%%   (paper: ~+90%%)\n", 100*c.WCycleExtraWork)
	fmt.Fprintf(&b, "  multigrid memory overhead:      +%.0f%%   (paper: ~+33%%)\n", 100*c.MemoryOverhead)
	fmt.Fprintf(&b, "  i860 cache hit rate:            %.2f -> %.2f after node+edge reordering (paper: 2x rate)\n",
		c.HitRateScrambled, c.HitRateReordered)
	fmt.Fprintf(&b, "  incremental schedule reuse:     %d ghost refs deduplicated per consecutive loop pair\n",
		c.IncrementalReused)
	fmt.Fprintf(&b, "  spectral partitioning cost:     %.2fs vs %.2fs flow solution = %.2fx (paper: ~1x)\n",
		c.PartitionSeconds, c.FlowSolveSeconds, c.PartitionOverSolve)
	return b.String()
}
