package tables

import (
	"fmt"
	"strings"

	"eul3d/internal/color"
	"eul3d/internal/flops"
	"eul3d/internal/machine"
	"eul3d/internal/mesh"
	"eul3d/internal/multigrid"
)

// C90Row is one line of Tables 1a-1c.
type C90Row struct {
	CPUs   int
	WallS  float64
	CPUSec float64
	MFlops float64
}

// C90Table is a regenerated Table 1a, 1b or 1c.
type C90Table struct {
	Strategy Strategy
	Config   Config
	FineNV   int
	FineNE   int
	Rows     []C90Row
}

// levelWork holds the parallel-region decomposition of one grid level's
// loops, built from its real edge coloring.
type levelWork struct {
	nv, ne, nbf int64
	colorSizes  []int64 // edges per color group
}

func buildLevelWork(m *mesh.Mesh) (*levelWork, error) {
	col, err := color.Greedy(m.NV(), m.Edges)
	if err != nil {
		return nil, err
	}
	lw := &levelWork{
		nv:  int64(m.NV()),
		ne:  int64(m.NE()),
		nbf: int64(len(m.BFaces)),
	}
	for _, s := range col.GroupSizes() {
		lw.colorSizes = append(lw.colorSizes, int64(s))
	}
	return lw, nil
}

// edgeRegions returns one region per color group with the given per-edge
// flop cost — the vector/parallel execution unit of Section 3.1.
func (lw *levelWork) edgeRegions(flopsPer int64) []machine.Region {
	out := make([]machine.Region, 0, len(lw.colorSizes))
	for _, n := range lw.colorSizes {
		out = append(out, machine.Region{N: n, FlopsPer: flopsPer})
	}
	return out
}

// stepRegions enumerates the parallel regions of one multistage time step.
func (lw *levelWork) stepRegions(cfg Config) []machine.Region {
	var r []machine.Region
	s := int64(cfg.Stages)
	// Per stage: pressures, convective edge loop, boundary loop, residual
	// combine + update.
	for q := int64(0); q < s; q++ {
		r = append(r, machine.Region{N: lw.nv, FlopsPer: flops.PresVert})
		r = append(r, lw.edgeRegions(flops.ConvEdge)...)
		r = append(r, machine.Region{N: lw.nbf, FlopsPer: flops.ConvBFace})
		// Residual smoothing: per sweep an edge loop and a vertex loop.
		for sw := 0; sw < cfg.NSmooth; sw++ {
			r = append(r, lw.edgeRegions(flops.SmoothEdge)...)
			r = append(r, machine.Region{N: lw.nv, FlopsPer: flops.SmoothVert})
		}
		r = append(r, machine.Region{N: lw.nv, FlopsPer: flops.StageVert})
	}
	// Dissipation on the first DissStages stages: two edge passes + sensor.
	for q := 0; q < cfg.DissStages; q++ {
		r = append(r, lw.edgeRegions(flops.Diss1Edge)...)
		r = append(r, machine.Region{N: lw.nv, FlopsPer: flops.NuVert})
		r = append(r, lw.edgeRegions(flops.Diss2Edge)...)
	}
	// Local time steps.
	r = append(r, lw.edgeRegions(flops.DtEdge)...)
	r = append(r, machine.Region{N: lw.nbf, FlopsPer: flops.DtBFace})
	r = append(r, machine.Region{N: lw.nv, FlopsPer: flops.DtVertex})
	return r
}

// residualRegions enumerates the regions of one full residual evaluation
// (used when transferring to a coarser grid).
func (lw *levelWork) residualRegions() []machine.Region {
	var r []machine.Region
	r = append(r, machine.Region{N: lw.nv, FlopsPer: flops.PresVert})
	r = append(r, lw.edgeRegions(flops.ConvEdge)...)
	r = append(r, machine.Region{N: lw.nbf, FlopsPer: flops.ConvBFace})
	r = append(r, lw.edgeRegions(flops.Diss1Edge)...)
	r = append(r, machine.Region{N: lw.nv, FlopsPer: flops.NuVert})
	r = append(r, lw.edgeRegions(flops.Diss2Edge)...)
	return r
}

// cycleRegions enumerates all parallel regions of one solver cycle for the
// given strategy over the level sequence.
func cycleRegions(levels []*levelWork, strategy Strategy, cfg Config) []machine.Region {
	var out []machine.Region
	if strategy == SingleGrid {
		return levels[0].stepRegions(cfg)
	}
	nlev := len(levels)
	ev := multigrid.Schedule(nlev, strategy.Gamma())
	steps := make([]int, nlev)
	for _, e := range ev {
		if e.Kind == multigrid.EulerStep {
			steps[e.Level]++
		}
	}
	for l, lw := range levels {
		for k := 0; k < steps[l]; k++ {
			out = append(out, lw.stepRegions(cfg)...)
		}
	}
	// Transfers and forcing: each non-coarsest-level visit computes the
	// level residual, the restricted residual/variables, the coarse
	// residual (for the forcing), and the correction interpolation +
	// smoothing on the receiving level.
	for l := 0; l < nlev-1; l++ {
		fine, coarse := levels[l], levels[l+1]
		for k := 0; k < steps[l]; k++ {
			out = append(out, fine.residualRegions()...)
			out = append(out, coarse.residualRegions()...)
			out = append(out, machine.Region{N: coarse.nv, FlopsPer: flops.XferVert}) // w restriction
			out = append(out, machine.Region{N: fine.nv, FlopsPer: flops.XferVert})   // residual scatter
			out = append(out, machine.Region{N: fine.nv, FlopsPer: flops.XferVert})   // correction prolongation
			for sw := 0; sw < cfg.NSmooth; sw++ {
				out = append(out, fine.edgeRegions(flops.SmoothEdge)...)
				out = append(out, machine.Region{N: fine.nv, FlopsPer: flops.SmoothVert})
			}
		}
	}
	return out
}

// Table1 regenerates Table 1a (single grid), 1b (V-cycle) or 1c (W-cycle):
// Y-MP C90 wall-clock seconds, total CPU seconds and MFlops for cfg.Cycles
// cycles on 1, 2, 4, 8 and 16 processors.
func Table1(cfg Config, strategy Strategy, mach *machine.SharedMachine) (*C90Table, error) {
	meshes, err := cfg.Meshes(strategy)
	if err != nil {
		return nil, err
	}
	var lws []*levelWork
	for _, m := range meshes {
		lw, err := buildLevelWork(m)
		if err != nil {
			return nil, err
		}
		lws = append(lws, lw)
	}
	regions := cycleRegions(lws, strategy, cfg)
	totalFlops := machine.Flops(regions)

	t := &C90Table{
		Strategy: strategy,
		Config:   cfg,
		FineNV:   meshes[0].NV(),
		FineNE:   meshes[0].NE(),
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		wall, cpu := mach.Time(regions, p)
		wall *= float64(cfg.Cycles)
		cpu *= float64(cfg.Cycles)
		t.Rows = append(t.Rows, C90Row{
			CPUs:   p,
			WallS:  wall,
			CPUSec: cpu,
			MFlops: float64(totalFlops) * float64(cfg.Cycles) / wall / 1e6,
		})
	}
	return t, nil
}

// String renders the table in the paper's layout.
func (t *C90Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Y-MP C90 speeds for EUL3D running %d %s cycles\n", t.Config.Cycles, t.Strategy)
	fmt.Fprintf(&b, "(fine mesh: %d points, %d edges)\n", t.FineNV, t.FineNE)
	fmt.Fprintf(&b, "%6s %12s %10s %8s\n", "CPUs", "Wall Clock", "CPU sec.", "MFlops")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%6d %12.1f %10.1f %8.0f\n", r.CPUs, r.WallS, r.CPUSec, r.MFlops)
	}
	return b.String()
}

// Speedup returns wall-clock speedup of the last row relative to the first.
func (t *C90Table) Speedup() float64 {
	return t.Rows[0].WallS / t.Rows[len(t.Rows)-1].WallS
}

// CPUInflation returns the relative growth of total CPU seconds from 1 CPU
// to the maximum CPU count (the multitasking overhead the paper reports as
// roughly 20%).
func (t *C90Table) CPUInflation() float64 {
	return t.Rows[len(t.Rows)-1].CPUSec/t.Rows[0].CPUSec - 1
}
