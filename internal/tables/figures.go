package tables

import (
	"fmt"
	"math"
	"strings"

	"eul3d/internal/euler"
	"eul3d/internal/multigrid"
)

// Figure1 renders the V and W cycle structures (Euler steps E and
// interpolations I) for 3, 4 and 5 levels, as in the paper's Figure 1.
func Figure1() string {
	var b strings.Builder
	for _, gamma := range []int{1, 2} {
		name := "V"
		if gamma == 2 {
			name = "W"
		}
		fmt.Fprintf(&b, "Multigrid %s-cycles (E = Euler step, I = interpolation; top row = finest grid)\n\n", name)
		for _, levels := range []int{3, 4, 5} {
			fmt.Fprintf(&b, "%d Levels: %s\n", levels, multigrid.FormatSchedule(multigrid.Schedule(levels, gamma)))
			b.WriteString(multigrid.Diagram(levels, gamma))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ConvergencePoint is one sample of a convergence history.
type ConvergencePoint struct {
	Cycle    int
	Residual float64 // normalized to the first cycle's residual
}

// Figure2 reruns the convergence experiment of Figure 2: the residual
// history of the single-grid, V-cycle and W-cycle strategies on the same
// fine mesh. It returns one series per strategy (normalized density
// residuals) and the final flow fields are kept by the returned solvers'
// owners — Figure4 reuses the W-cycle result.
type Figure2Result struct {
	Config   Config
	Series   map[string][]ConvergencePoint
	WSolver  *multigrid.Solver // converged W-cycle solver (for Figure 4)
	WorkUnit map[string]float64
}

// Figure2Config is the default convergence-study workload: smaller than
// the table workload so that three full solves stay interactive.
func Figure2Config() Config {
	c := DefaultConfig()
	c.NX, c.NY, c.NZ = 32, 16, 12
	c.Cycles = 300
	return c
}

// Figure2 runs the three solution strategies and records their histories.
func Figure2(cfg Config) (*Figure2Result, error) {
	res := &Figure2Result{
		Config:   cfg,
		Series:   map[string][]ConvergencePoint{},
		WorkUnit: map[string]float64{},
	}
	p := euler.DefaultParams(cfg.Mach, cfg.AlphaDeg)

	for _, strategy := range []Strategy{SingleGrid, VCycle, WCycle} {
		meshes, err := cfg.Meshes(strategy)
		if err != nil {
			return nil, err
		}
		name := strategy.String()
		var first float64
		record := func(c int, norm float64) {
			if c == 0 {
				first = norm
			}
			res.Series[name] = append(res.Series[name], ConvergencePoint{
				Cycle:    c,
				Residual: norm / first,
			})
		}
		if strategy == SingleGrid {
			d := euler.NewDisc(meshes[0], p)
			w := make([]euler.State, meshes[0].NV())
			d.InitUniform(w)
			ws := euler.NewStepWorkspace(len(w))
			for c := 0; c < cfg.Cycles; c++ {
				record(c, d.Step(w, nil, ws))
			}
			res.WorkUnit[name] = 1
			continue
		}
		mg, err := multigrid.New(meshes, p, strategy.Gamma())
		if err != nil {
			return nil, err
		}
		for c := 0; c < cfg.Cycles; c++ {
			record(c, mg.Cycle())
		}
		res.WorkUnit[name] = mg.WorkUnits()
		if strategy == WCycle {
			res.WSolver = mg
		}
	}
	return res, nil
}

// OrdersReduced returns how many orders of magnitude the named strategy's
// residual fell over the run.
func (r *Figure2Result) OrdersReduced(name string) float64 {
	s := r.Series[name]
	if len(s) == 0 {
		return 0
	}
	last := s[len(s)-1].Residual
	if last <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(last)
}

// CSV renders all series as cycle,strategy,residual rows.
func (r *Figure2Result) CSV() string {
	var b strings.Builder
	b.WriteString("cycle,strategy,normalized_residual\n")
	for name, series := range r.Series {
		for _, pt := range series {
			fmt.Fprintf(&b, "%d,%s,%.6e\n", pt.Cycle, name, pt.Residual)
		}
	}
	return b.String()
}

// Figure3 reports the mesh sequence statistics corresponding to the
// paper's Figure 3 caption (its aircraft mesh figure): points and
// tetrahedra per multigrid level.
func Figure3(cfg Config) (string, error) {
	meshes, err := cfg.Meshes(WCycle)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Multigrid mesh sequence for the bump-channel configuration (paper: aircraft, 804,056 / 106,064 / ... points)\n")
	fmt.Fprintf(&b, "%6s %10s %12s %10s %10s\n", "Level", "Points", "Tetrahedra", "Edges", "BFaces")
	for l, m := range meshes {
		s := m.ComputeStats()
		fmt.Fprintf(&b, "%6d %10d %12d %10d %10d\n", l, s.NVert, s.NTet, s.NEdge, s.NBFace)
	}
	return b.String(), nil
}

// MachField samples the Mach number on the symmetry plane z = LZ/2 of a
// converged solution, as a rectangular raster for contouring (Figure 4).
type MachField struct {
	NX, NY int
	X, Y   []float64 // axis coordinates
	M      []float64 // NX*NY row-major Mach samples
	MaxM   float64
}

// Figure4 extracts the Mach field from the finest grid of a converged
// multigrid solver by interpolating vertex Mach numbers onto a raster
// using inverse-distance weighting of nearby vertices.
func Figure4(mg *multigrid.Solver, nx, ny int) *MachField {
	m := mg.Fine().Disc.M
	w := mg.Fine().W
	g := mg.Fine().Disc.P.Gas

	// Domain bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	minZ, maxZ := math.Inf(1), math.Inf(-1)
	for _, x := range m.X {
		minX, maxX = math.Min(minX, x.X), math.Max(maxX, x.X)
		minY, maxY = math.Min(minY, x.Y), math.Max(maxY, x.Y)
		minZ, maxZ = math.Min(minZ, x.Z), math.Max(maxZ, x.Z)
	}
	zmid := 0.5 * (minZ + maxZ)

	f := &MachField{NX: nx, NY: ny}
	for i := 0; i < nx; i++ {
		f.X = append(f.X, minX+(maxX-minX)*float64(i)/float64(nx-1))
	}
	for j := 0; j < ny; j++ {
		f.Y = append(f.Y, minY+(maxY-minY)*float64(j)/float64(ny-1))
	}

	// Vertices near the mid-plane, with their Mach numbers.
	type pt struct {
		x, y, mach float64
	}
	var pts []pt
	slab := (maxZ - minZ) / 6
	for v, x := range m.X {
		if math.Abs(x.Z-zmid) <= slab {
			pts = append(pts, pt{x.X, x.Y, g.Mach(w[v])})
		}
	}

	f.M = make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			px, py := f.X[i], f.Y[j]
			num, den := 0.0, 0.0
			for _, p := range pts {
				d2 := (p.x-px)*(p.x-px) + (p.y-py)*(p.y-py) + 1e-12
				wgt := 1 / (d2 * d2)
				num += wgt * p.mach
				den += wgt
			}
			mach := num / den
			f.M[j*nx+i] = mach
			if mach > f.MaxM {
				f.MaxM = mach
			}
		}
	}
	return f
}

// CSV renders the raster as x,y,mach rows.
func (f *MachField) CSV() string {
	var b strings.Builder
	b.WriteString("x,y,mach\n")
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			fmt.Fprintf(&b, "%.4f,%.4f,%.4f\n", f.X[i], f.Y[j], f.M[j*f.NX+i])
		}
	}
	return b.String()
}

// ASCII renders the Mach field as banded contour art (top of the channel
// on the first row), with '*' marking supersonic cells — the shock pattern
// of Figure 4 in 80 columns.
func (f *MachField) ASCII() string {
	bands := []byte(" .:-=+oO")
	var b strings.Builder
	minM := math.Inf(1)
	for _, m := range f.M {
		minM = math.Min(minM, m)
	}
	span := f.MaxM - minM
	if span == 0 {
		span = 1
	}
	for j := f.NY - 1; j >= 0; j-- {
		for i := 0; i < f.NX; i++ {
			m := f.M[j*f.NX+i]
			if m >= 1 {
				b.WriteByte('*') // supersonic pocket
				continue
			}
			k := int(float64(len(bands)-1) * (m - minM) / span)
			if k < 0 {
				k = 0
			}
			if k >= len(bands) {
				k = len(bands) - 1
			}
			b.WriteByte(bands[k])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "Mach range [%.3f, %.3f]; '*' = supersonic\n", minM, f.MaxM)
	return b.String()
}
