package tables

import (
	"fmt"
	"strings"

	"eul3d/internal/dmsolver"
	"eul3d/internal/euler"
	"eul3d/internal/flops"
	"eul3d/internal/graph"
	"eul3d/internal/machine"
	"eul3d/internal/multigrid"
	"eul3d/internal/partition"
)

// DeltaRow is one line of Tables 2a-2c.
type DeltaRow struct {
	Nodes  int
	CommS  float64
	CompS  float64
	TotalS float64
	MFlops float64

	// Diagnostics not printed in the paper's tables but reported in the
	// text: total message/byte volume per cycle.
	MsgsPerCycle  int64
	BytesPerCycle int64
}

// DeltaTable is a regenerated Table 2a, 2b or 2c.
type DeltaTable struct {
	Strategy Strategy
	Config   Config
	FineNV   int
	Method   partition.Method
	Rows     []DeltaRow
}

// Table2 regenerates Table 2a (single grid), 2b (V-cycle) or 2c (W-cycle):
// Touchstone Delta communication/computation/total seconds per cfg.Cycles
// cycles and MFlops, for each node count. The communication volumes come
// from executing one real cycle of the distributed solver (real PARTI
// schedules on a real spectral partition); the seconds come from the Delta
// machine model.
func Table2(cfg Config, strategy Strategy, nodeCounts []int, method partition.Method, mach *machine.DeltaMachine) (*DeltaTable, error) {
	meshes, err := cfg.Meshes(strategy)
	if err != nil {
		return nil, err
	}
	t := &DeltaTable{Strategy: strategy, Config: cfg, FineNV: meshes[0].NV(), Method: method}

	g, err := graph.FromEdges(meshes[0].NV(), meshes[0].Edges)
	if err != nil {
		return nil, err
	}
	p := euler.DefaultParams(cfg.Mach, cfg.AlphaDeg)

	for _, nodes := range nodeCounts {
		part, err := partition.Partition(g, meshes[0].X, nodes, method, cfg.Seed)
		if err != nil {
			return nil, err
		}
		parts := make([][]int32, len(meshes))
		parts[0] = part
		var dm *dmsolver.Solver
		if strategy == SingleGrid {
			dm, err = dmsolver.NewSingle(meshes[0], part, nodes, p)
		} else {
			dm, err = dmsolver.NewMultigrid(meshes, parts, nodes, p, strategy.Gamma())
		}
		if err != nil {
			return nil, err
		}

		// Execute one real cycle to record the communication pattern.
		dm.Fabric.ResetStats()
		if _, err := dm.Cycle(); err != nil {
			return nil, err
		}
		phases := dm.Comm.GatherState + dm.Comm.ScatterState + dm.Comm.GatherFloat + dm.Comm.ScatterFloat

		commMax := 0.0
		var totMsgs, totBytes int64
		for node := 0; node < nodes; node++ {
			sm, sb := dm.Fabric.Stats(node)
			rm, rb := dm.Fabric.RecvStats(node)
			ct := mach.CommTime(sm+rm, sb+rb, phases)
			if ct > commMax {
				commMax = ct
			}
			totMsgs += sm
			totBytes += sb
		}

		// Per-node computation from real per-node topology and the visit
		// counts of the strategy.
		steps := []int{1}
		if strategy != SingleGrid {
			steps = make([]int, len(meshes))
			for _, e := range multigrid.Schedule(len(meshes), strategy.Gamma()) {
				if e.Kind == multigrid.EulerStep {
					steps[e.Level]++
				}
			}
		}
		compMax := 0.0
		var totalFlops int64
		for node := 0; node < nodes; node++ {
			var f int64
			for l, lev := range dm.Levels {
				ne := int64(len(lev.Edges[node]))
				nbf := int64(len(lev.BFaces[node]))
				nv := int64(lev.Dist.Count(node))
				f += int64(steps[l]) * flops.Step(nv, ne, nbf, cfg.Stages, cfg.DissStages, cfg.NSmooth)
				if strategy != SingleGrid && l < len(dm.Levels)-1 {
					nextLev := dm.Levels[l+1]
					neC := int64(len(nextLev.Edges[node]))
					nbfC := int64(len(nextLev.BFaces[node]))
					nvC := int64(nextLev.Dist.Count(node))
					per := flops.Residual(nv, ne, nbf) + flops.Residual(nvC, neC, nbfC) +
						flops.Transfer(nv, nvC) +
						int64(cfg.NSmooth)*(ne*flops.SmoothEdge+nv*flops.SmoothVert)
					f += int64(steps[l]) * per
				}
			}
			ct := mach.CompTime(f, true)
			if ct > compMax {
				compMax = ct
			}
			totalFlops += f
		}

		cycles := float64(cfg.Cycles)
		comm := commMax * cycles
		comp := compMax * cycles
		total := comm + comp
		t.Rows = append(t.Rows, DeltaRow{
			Nodes:         nodes,
			CommS:         comm,
			CompS:         comp,
			TotalS:        total,
			MFlops:        float64(totalFlops) * cycles / total / 1e6,
			MsgsPerCycle:  totMsgs,
			BytesPerCycle: totBytes,
		})
	}
	return t, nil
}

// String renders the table in the paper's layout.
func (t *DeltaTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Touchstone Delta speeds for EUL3D running %d %s cycles\n", t.Config.Cycles, t.Strategy)
	fmt.Fprintf(&b, "(fine mesh: %d points, %s partitioning)\n", t.FineNV, t.Method)
	fmt.Fprintf(&b, "%6s | %15s %13s %9s | %8s\n", "Nodes", "Communication", "Computation", "Total", "MFlops")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%6d | %15.1f %13.1f %9.1f | %8.0f\n", r.Nodes, r.CommS, r.CompS, r.TotalS, r.MFlops)
	}
	return b.String()
}
