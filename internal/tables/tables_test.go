package tables

import (
	"math"
	"strings"
	"testing"

	"eul3d/internal/machine"
	"eul3d/internal/partition"
)

// testConfig is a small workload so the table machinery runs in seconds.
func testConfig() Config {
	return Config{
		NX: 16, NY: 8, NZ: 6,
		Levels:   3,
		Mach:     0.675,
		AlphaDeg: 0,
		Seed:     17,
		Cycles:   100,
		Stages:   5, DissStages: 2, NSmooth: 2,
	}
}

func TestStrategyNames(t *testing.T) {
	if SingleGrid.String() != "single grid" || VCycle.Gamma() != 1 || WCycle.Gamma() != 2 {
		t.Error("strategy naming broken")
	}
	if SingleGrid.Gamma() != 0 {
		t.Error("single grid gamma should be 0")
	}
	if Strategy(9).String() != "unknown" {
		t.Error("unknown strategy string")
	}
}

func TestConfigScale(t *testing.T) {
	c := testConfig().Scale(2)
	if c.NX != 32 || c.NY != 16 || c.NZ != 12 {
		t.Errorf("scaled config: %+v", c)
	}
}

func TestTable1Shapes(t *testing.T) {
	// Table 1 is pure preprocessing + model, so a moderately sized mesh is
	// affordable and keeps the coarse grids meaningful.
	cfg := testConfig()
	cfg.NX, cfg.NY, cfg.NZ = 32, 16, 12
	var prev *C90Table
	for _, s := range []Strategy{SingleGrid, VCycle, WCycle} {
		tab, err := Table1(cfg, s, &machine.C90)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 5 || tab.Rows[0].CPUs != 1 || tab.Rows[4].CPUs != 16 {
			t.Fatalf("%v: bad rows %+v", s, tab.Rows)
		}
		// Wall clock decreases with CPUs, CPU seconds increase.
		for i := 1; i < len(tab.Rows); i++ {
			if tab.Rows[i].WallS >= tab.Rows[i-1].WallS {
				t.Errorf("%v: wall clock not decreasing at row %d", s, i)
			}
			if tab.Rows[i].CPUSec < tab.Rows[i-1].CPUSec {
				t.Errorf("%v: CPU seconds not increasing at row %d", s, i)
			}
		}
		if tab.Speedup() < 3 || tab.Speedup() > 16 {
			t.Errorf("%v: speedup %v", s, tab.Speedup())
		}
		if tab.CPUInflation() <= 0 {
			t.Errorf("%v: inflation %v", s, tab.CPUInflation())
		}
		// Multigrid cycles cost more than single-grid cycles (paper: V
		// ~75%, W ~90% more in sequential CPU time).
		if prev != nil && tab.Rows[0].WallS <= prev.Rows[0].WallS {
			t.Errorf("%v sequential cycle not more expensive than %v", s, prev.Strategy)
		}
		if !strings.Contains(tab.String(), "Y-MP C90") {
			t.Error("table header missing")
		}
		prev = tab
	}
}

func TestTable2Shapes(t *testing.T) {
	cfg := testConfig()
	nodes := []int{8, 16}
	var rates []float64
	for _, s := range []Strategy{SingleGrid, VCycle, WCycle} {
		tab, err := Table2(cfg, s, nodes, partition.Spectral, &machine.Delta)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 2 {
			t.Fatalf("%v: rows %+v", s, tab.Rows)
		}
		for i, r := range tab.Rows {
			if r.CommS <= 0 || r.CompS <= 0 || r.TotalS != r.CommS+r.CompS {
				t.Errorf("%v row %d: %+v", s, i, r)
			}
			if r.MsgsPerCycle == 0 || r.BytesPerCycle == 0 {
				t.Errorf("%v row %d: no traffic recorded", s, i)
			}
		}
		// More nodes: less computation per node.
		if tab.Rows[1].CompS >= tab.Rows[0].CompS {
			t.Errorf("%v: computation did not shrink with nodes", s)
		}
		rates = append(rates, tab.Rows[1].MFlops)
		if !strings.Contains(tab.String(), "Touchstone Delta") {
			t.Error("table header missing")
		}
	}
	// Paper: single grid achieves the highest computational rate; V and W
	// degrade in that order (smaller coarse data sets over the same nodes).
	if !(rates[0] > rates[1] && rates[1] > rates[2]) {
		t.Errorf("rate ordering single>V>W violated: %v", rates)
	}
}

func TestFigure1Content(t *testing.T) {
	s := Figure1()
	for _, want := range []string{"V-cycles", "W-cycles", "E0 E1 E2 I1 I0", "4 Levels"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure 1 missing %q", want)
		}
	}
}

func TestFigure2AndFigure4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig()
	cfg.Cycles = 30
	res, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series: %d", len(res.Series))
	}
	for name, s := range res.Series {
		if len(s) != 30 {
			t.Errorf("%s: %d points", name, len(s))
		}
		if s[0].Residual != 1 {
			t.Errorf("%s: first point not normalized: %v", name, s[0].Residual)
		}
	}
	if res.WSolver == nil {
		t.Fatal("W solver not retained")
	}
	csv := res.CSV()
	if !strings.Contains(csv, "cycle,strategy,normalized_residual") {
		t.Error("CSV header missing")
	}

	f := Figure4(res.WSolver, 40, 12)
	if len(f.M) != 40*12 {
		t.Fatalf("raster size %d", len(f.M))
	}
	for _, m := range f.M {
		if m < 0 || m > 3 {
			t.Fatalf("implausible Mach %v", m)
		}
	}
	if !strings.Contains(f.CSV(), "x,y,mach") {
		t.Error("figure 4 CSV header missing")
	}
	if len(f.ASCII()) == 0 {
		t.Error("empty ASCII contours")
	}
}

func TestFigure3(t *testing.T) {
	s, err := Figure3(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "Level") || !strings.Contains(s, "Tetrahedra") {
		t.Errorf("figure 3 output: %s", s)
	}
	if got := strings.Count(s, "\n"); got < 4 {
		t.Errorf("figure 3 rows: %d", got)
	}
}

func TestOrdersReducedEmpty(t *testing.T) {
	r := &Figure2Result{Series: map[string][]ConvergencePoint{}}
	if r.OrdersReduced("nope") != 0 {
		t.Error("missing series should report 0 orders")
	}
}

func TestMeasureClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig()
	cfg.Cycles = 20
	c, err := MeasureClaims(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock based, so keep the assertion loose: multigrid cycles must
	// cost more than single-grid cycles (the V/W ordering is asserted by
	// the deterministic WorkUnits test in the multigrid package).
	if c.VCycleExtraWork <= 0 || c.WCycleExtraWork <= 0 {
		t.Errorf("multigrid cycles not more expensive: V=+%.0f%% W=+%.0f%%",
			100*c.VCycleExtraWork, 100*c.WCycleExtraWork)
	}
	if c.MemoryOverhead <= 0 || c.MemoryOverhead > 1 {
		t.Errorf("memory overhead %v", c.MemoryOverhead)
	}
	if !(c.HitRateReordered > c.HitRateScrambled) {
		t.Errorf("reordering hit rates %v -> %v", c.HitRateScrambled, c.HitRateReordered)
	}
	if c.IncrementalReused <= 0 {
		t.Error("no incremental reuse measured")
	}
	if c.PartitionSeconds <= 0 || c.FlowSolveSeconds <= 0 {
		t.Errorf("timings: %v %v", c.PartitionSeconds, c.FlowSolveSeconds)
	}
	if len(c.String()) == 0 {
		t.Error("empty claims report")
	}
}

func TestCyclesToOrders(t *testing.T) {
	r := &Figure2Result{Series: map[string][]ConvergencePoint{
		"direct": {{0, 1}, {10, 1e-3}, {20, 1e-7}},
		"extrap": {{0, 1}, {10, 1e-1}, {20, 1e-2}},
		"stuck":  {{0, 1}, {10, 1}, {20, 1}},
	}}
	// Direct hit: first point at or below 1e-6 is cycle 20.
	if c, ex := r.CyclesToOrders("direct", 6); ex || c != 20 {
		t.Errorf("direct: %v %v", c, ex)
	}
	// Extrapolation: one order per 10 cycles, so 6 orders at cycle ~60.
	c, ex := r.CyclesToOrders("extrap", 6)
	if !ex || c < 55 || c > 65 {
		t.Errorf("extrap: %v %v", c, ex)
	}
	// No progress: infinite.
	if c, _ := r.CyclesToOrders("stuck", 6); !math.IsInf(c, 1) {
		t.Errorf("stuck: %v", c)
	}
	if c, _ := r.CyclesToOrders("missing", 6); !math.IsNaN(c) {
		t.Errorf("missing: %v", c)
	}
}

func TestComputeTimeToSolution(t *testing.T) {
	fig2 := &Figure2Result{Series: map[string][]ConvergencePoint{
		"single grid":       {{0, 1}, {100, 1e-2}},
		"multigrid V cycle": {{0, 1}, {100, 1e-7}},
		"multigrid W cycle": {{0, 1}, {50, 1e-7}},
	}}
	mk1 := func(perCycle float64) *C90Table {
		return &C90Table{Config: Config{Cycles: 100}, Rows: []C90Row{{CPUs: 16, WallS: perCycle * 100}}}
	}
	mk2 := func(perCycle float64) *DeltaTable {
		return &DeltaTable{Config: Config{Cycles: 100}, Rows: []DeltaRow{{Nodes: 512, TotalS: perCycle * 100}}}
	}
	t1 := map[Strategy]*C90Table{SingleGrid: mk1(1), VCycle: mk1(1.5), WCycle: mk1(2)}
	t2 := map[Strategy]*DeltaTable{SingleGrid: mk2(3), VCycle: mk2(4), WCycle: mk2(5)}
	tts := ComputeTimeToSolution(fig2, 6, t1, t2)
	if len(tts.Rows) != 3 {
		t.Fatalf("rows: %d", len(tts.Rows))
	}
	// Single grid: 2 orders per 100 cycles extrapolates to 300 cycles,
	// 300 s on the C90. W: direct hit at 50 cycles, 100 s.
	sg, w := tts.Rows[0], tts.Rows[2]
	if !sg.Extrapolated || math.Abs(sg.C90Seconds-300) > 15 {
		t.Errorf("single grid: %+v", sg)
	}
	if w.Extrapolated || math.Abs(w.C90Seconds-100) > 1e-9 || math.Abs(w.DeltaSeconds-250) > 1e-9 {
		t.Errorf("W: %+v", w)
	}
	if !strings.Contains(tts.String(), "orders of magnitude") {
		t.Error("report header")
	}
}
