// Package tables is the benchmark harness that regenerates every table and
// figure of the paper's evaluation: Tables 1a-1c (Cray Y-MP C90 speeds for
// 100 cycles of the single-grid, V-cycle and W-cycle strategies on 1-16
// CPUs), Tables 2a-2c (Intel Touchstone Delta speeds on 256 and 512 nodes,
// with the communication/computation split), Figure 1 (multigrid cycle
// structures), Figure 2 (convergence histories), Figure 3 (mesh sequence
// statistics) and Figure 4 (Mach contours).
//
// The solver kernels, edge colorings, partitions and communication
// schedules are the real ones; the seconds come from the calibrated
// machine models in internal/machine (see DESIGN.md for the substitution
// argument). The default workload is a scaled-down version of the paper's
// aircraft case — the transonic bump channel at the paper's flow condition
// (Mach 0.768, 1.116 degrees) — because the original 804k-point mesh and
// its generator are not available.
package tables

import (
	"eul3d/internal/mesh"
	"eul3d/internal/meshgen"
)

// Strategy selects the solution strategy of a table row.
type Strategy int

const (
	// SingleGrid runs the fine grid only (Tables 1a, 2a).
	SingleGrid Strategy = iota
	// VCycle is multigrid with cycle index 1 (Tables 1b, 2b).
	VCycle
	// WCycle is multigrid with cycle index 2 (Tables 1c, 2c).
	WCycle
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case SingleGrid:
		return "single grid"
	case VCycle:
		return "multigrid V cycle"
	case WCycle:
		return "multigrid W cycle"
	}
	return "unknown"
}

// Gamma returns the multigrid cycle index of the strategy (0 for single
// grid).
func (s Strategy) Gamma() int {
	switch s {
	case VCycle:
		return 1
	case WCycle:
		return 2
	}
	return 0
}

// Config describes the workload of a table run.
type Config struct {
	NX, NY, NZ int     // fine-mesh cells
	Levels     int     // multigrid levels
	Mach       float64 // freestream Mach number
	AlphaDeg   float64 // angle of attack
	Seed       int64
	Cycles     int // cycles per run (the paper reports 100)

	Stages     int // RK stages (5)
	DissStages int // dissipation evaluations per step (2)
	NSmooth    int // residual-averaging sweeps (2)
}

// DefaultConfig is the default table workload: a ~152k-point fine grid
// (larger than the paper's second-finest mesh divided by four) with a
// 4-level sequence, the paper's flow condition, 100 cycles. Scale up with
// cmd/benchtables -scale to approach the paper's 804k-point mesh.
func DefaultConfig() Config {
	return Config{
		NX: 96, NY: 48, NZ: 32,
		Levels:   4,
		Mach:     0.768,
		AlphaDeg: 1.116,
		Seed:     17,
		Cycles:   100,
		Stages:   5, DissStages: 2, NSmooth: 2,
	}
}

// Scale multiplies the linear mesh resolution by f (f=2 gives 8x the
// points).
func (c Config) Scale(f float64) Config {
	c.NX = int(float64(c.NX) * f)
	c.NY = int(float64(c.NY) * f)
	c.NZ = int(float64(c.NZ) * f)
	return c
}

// Meshes generates the multigrid sequence for the configuration (just the
// fine mesh for SingleGrid).
func (c Config) Meshes(strategy Strategy) ([]*mesh.Mesh, error) {
	levels := c.Levels
	if strategy == SingleGrid {
		levels = 1
	}
	return meshgen.Sequence(meshgen.DefaultChannel(c.NX, c.NY, c.NZ, c.Seed), levels)
}
